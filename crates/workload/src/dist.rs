//! Key-selection distributions.

use rand::Rng;

/// How clients pick keys.
///
/// The paper's clients "select the keys uniformly" by default (§VI-B); the
/// skewed-workload experiment uses "a Zipfian distribution with exponent
/// value of one" (§VII-G).
#[derive(Debug, Clone)]
pub enum KeyDist {
    /// Every key in `0..n` equally likely.
    Uniform {
        /// Key-space size.
        n: u64,
    },
    /// Zipf over ranks `1..=n` mapped to keys `0..n`: key `k` has
    /// probability proportional to `1 / (k+1)^theta`.
    Zipf {
        /// Key-space size.
        n: u64,
        /// Skew exponent (1.0 in the paper).
        theta: f64,
        /// Normalization constant `H_{n,theta}` (precomputed).
        harmonic: f64,
    },
    /// An inner distribution with every sampled key multiplied by
    /// `stride`. With `stride` equal to the multiprogramming level, all hot
    /// keys of a Zipf inner distribution collide on worker group 0 under
    /// the `key mod k` C-G rule — the adversarial case for P-SMR's static
    /// load balancing (§IV-D) used by the online-remap extension
    /// experiment.
    Strided {
        /// The distribution of the pre-stride rank.
        inner: Box<KeyDist>,
        /// Multiplier applied to every sample.
        stride: u64,
    },
}

impl KeyDist {
    /// A uniform distribution over `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn uniform(n: u64) -> Self {
        assert!(n > 0, "key space must be non-empty");
        KeyDist::Uniform { n }
    }

    /// A Zipf distribution over `0..n` with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is not positive and finite.
    pub fn zipf(n: u64, theta: f64) -> Self {
        assert!(n > 0, "key space must be non-empty");
        assert!(
            theta > 0.0 && theta.is_finite(),
            "exponent must be positive"
        );
        // Generalized harmonic number H_{n,theta}. For n = 10M this loop is
        // a one-off ~40ms cost at construction.
        let harmonic: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(theta)).sum();
        KeyDist::Zipf { n, theta, harmonic }
    }

    /// Strides an existing distribution (see [`KeyDist::Strided`]).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn strided(inner: KeyDist, stride: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        KeyDist::Strided {
            inner: Box::new(inner),
            stride,
        }
    }

    /// Key-space size (largest producible key + 1).
    pub fn n(&self) -> u64 {
        match self {
            KeyDist::Uniform { n } | KeyDist::Zipf { n, .. } => *n,
            KeyDist::Strided { inner, stride } => inner.n() * stride,
        }
    }

    /// Draws a key.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match *self {
            KeyDist::Uniform { n } => rng.gen_range(0..n),
            KeyDist::Strided { ref inner, stride } => inner.sample(rng) * stride,
            KeyDist::Zipf { n, theta, harmonic } => {
                // Inversion by bisection on the CDF: O(log n) per sample
                // with no per-key tables. The CDF at rank r is
                // H_{r,theta} / H_{n,theta}; we avoid storing prefix sums by
                // using the approximation of the generalized harmonic number
                // via the integral, falling back to exact summation for the
                // head where mass concentrates.
                let u: f64 = rng.gen_range(0.0..1.0) * harmonic;
                // Head: first 64 ranks hold most of the mass at theta ≈ 1.
                let mut acc = 0.0;
                for k in 1..=64.min(n) {
                    acc += 1.0 / (k as f64).powf(theta);
                    if acc >= u {
                        return k - 1;
                    }
                }
                // Tail: bisect on the integral approximation
                //   H_{r} ≈ acc64 + ∫_{64}^{r} x^-theta dx.
                let acc64 = acc;
                let tail_mass = |r: f64| -> f64 {
                    if (theta - 1.0).abs() < 1e-9 {
                        acc64 + (r / 64.0).ln()
                    } else {
                        acc64 + (r.powf(1.0 - theta) - 64f64.powf(1.0 - theta)) / (1.0 - theta)
                    }
                };
                let (mut lo, mut hi) = (64f64, n as f64);
                for _ in 0..64 {
                    let mid = (lo + hi) / 2.0;
                    if tail_mass(mid) < u {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                (hi.ceil() as u64).clamp(1, n) - 1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_covers_the_space_evenly() {
        let dist = KeyDist::uniform(10);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[dist.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "count {c} far from uniform");
        }
    }

    #[test]
    fn zipf_concentrates_mass_on_small_keys() {
        let dist = KeyDist::zipf(1_000_000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let total = 100_000u32;
        let mut head = 0u32;
        let mut key0 = 0u32;
        for _ in 0..total {
            let k = dist.sample(&mut rng);
            assert!(k < 1_000_000);
            if k < 100 {
                head += 1;
            }
            if k == 0 {
                key0 += 1;
            }
        }
        // With theta=1, n=1e6: H_n ≈ ln(1e6)+0.577 ≈ 14.4; P(k<100) ≈
        // H_100/H_n ≈ 5.19/14.39 ≈ 36%; P(k=0) ≈ 1/14.39 ≈ 7%.
        let head_frac = head as f64 / total as f64;
        assert!(
            (0.30..0.43).contains(&head_frac),
            "head fraction {head_frac}"
        );
        let k0_frac = key0 as f64 / total as f64;
        assert!((0.05..0.09).contains(&k0_frac), "key-0 fraction {k0_frac}");
    }

    #[test]
    fn zipf_rank_frequencies_decay() {
        let dist = KeyDist::zipf(10_000, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 16];
        for _ in 0..200_000 {
            let k = dist.sample(&mut rng);
            if (k as usize) < counts.len() {
                counts[k as usize] += 1;
            }
        }
        // Key 0 should be drawn roughly twice as often as key 1, three
        // times as often as key 2, etc. Allow generous tolerance.
        assert!(counts[0] as f64 > 1.6 * counts[1] as f64);
        assert!(counts[1] as f64 > 1.3 * counts[2] as f64);
    }

    #[test]
    fn deterministic_given_a_seed() {
        let dist = KeyDist::zipf(1000, 1.0);
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100).map(|_| dist.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn n_accessor() {
        assert_eq!(KeyDist::uniform(42).n(), 42);
        assert_eq!(KeyDist::zipf(42, 1.0).n(), 42);
        assert_eq!(KeyDist::strided(KeyDist::uniform(42), 8).n(), 336);
    }

    #[test]
    fn strided_samples_are_multiples() {
        let dist = KeyDist::strided(KeyDist::zipf(1000, 1.0), 8);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            assert_eq!(dist.sample(&mut rng) % 8, 0, "all keys hit group 0 mod 8");
        }
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_rejected() {
        let _ = KeyDist::strided(KeyDist::uniform(1), 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_uniform_rejected() {
        let _ = KeyDist::uniform(0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_theta_rejected() {
        let _ = KeyDist::zipf(10, 0.0);
    }
}
