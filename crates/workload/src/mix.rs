//! Command mixes over the key-value store.

use crate::dist::KeyDist;
use psmr_kvstore::KvOp;
use rand::Rng;

/// Probabilities of each store command; the remainder after reads, updates
/// and inserts is deletes.
///
/// Constructors map directly to the paper's experiments:
///
/// * [`KvMix::read_only`] — §VII-C (independent commands),
/// * [`KvMix::insert_delete`] — §VII-D (dependent commands),
/// * [`KvMix::mixed`] — §VII-F (x% inserts+deletes, rest reads),
/// * [`KvMix::update_read`] — §VII-G (50% updates, 50% reads).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvMix {
    read: f64,
    update: f64,
    insert: f64,
    delete: f64,
}

impl KvMix {
    /// A custom mix; fractions must sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is negative or the sum differs from 1 by more
    /// than 1e-9.
    pub fn new(read: f64, update: f64, insert: f64, delete: f64) -> Self {
        for f in [read, update, insert, delete] {
            assert!(f >= 0.0, "fractions must be non-negative");
        }
        let sum = read + update + insert + delete;
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "fractions must sum to 1, got {sum}"
        );
        Self {
            read,
            update,
            insert,
            delete,
        }
    }

    /// 100% reads (Figure 3).
    pub fn read_only() -> Self {
        Self::new(1.0, 0.0, 0.0, 0.0)
    }

    /// 50% inserts, 50% deletes (Figure 4).
    pub fn insert_delete() -> Self {
        Self::new(0.0, 0.0, 0.5, 0.5)
    }

    /// `dependent_pct` percent inserts+deletes (split evenly), the rest
    /// reads — the x-axis of Figure 6 (e.g. `0.1` means 0.1%).
    ///
    /// # Panics
    ///
    /// Panics if `dependent_pct` is outside `0..=100`.
    pub fn mixed(dependent_pct: f64) -> Self {
        assert!(
            (0.0..=100.0).contains(&dependent_pct),
            "percentage out of range"
        );
        let dep = dependent_pct / 100.0;
        Self::new(1.0 - dep, 0.0, dep / 2.0, dep / 2.0)
    }

    /// 50% updates, 50% reads (Figure 7's skew experiment).
    pub fn update_read() -> Self {
        Self::new(0.5, 0.5, 0.0, 0.0)
    }

    /// Fraction of commands that are structural (insert/delete) — the
    /// "percentage of dependent commands" of §VII-F.
    pub fn dependent_fraction(&self) -> f64 {
        self.insert + self.delete
    }

    /// Draws one operation, with the key taken from `dist`.
    ///
    /// Inserted keys are drawn *above* the key space (`n + sample`) so that
    /// inserts mostly succeed and deletes target existing keys — keeping
    /// the tree size roughly stable, as the paper's statistics-gathering
    /// phase assumes ("few inserts and deletes involve changes in multiple
    /// levels of the tree").
    pub fn sample<R: Rng + ?Sized>(&self, dist: &KeyDist, rng: &mut R) -> KvOp {
        let roll: f64 = rng.gen_range(0.0..1.0);
        let key = dist.sample(rng);
        if roll < self.read {
            KvOp::Read { key }
        } else if roll < self.read + self.update {
            KvOp::Update {
                key,
                value: rng.gen(),
            }
        } else if roll < self.read + self.update + self.insert {
            KvOp::Insert {
                key: dist.n() + key,
                value: rng.gen(),
            }
        } else {
            KvOp::Delete { key }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frequencies(mix: KvMix, samples: u32) -> [f64; 4] {
        let dist = KeyDist::uniform(1000);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 4];
        for _ in 0..samples {
            match mix.sample(&dist, &mut rng) {
                KvOp::Read { .. } => counts[0] += 1,
                KvOp::Update { .. } => counts[1] += 1,
                KvOp::Insert { .. } => counts[2] += 1,
                KvOp::Delete { .. } => counts[3] += 1,
            }
        }
        counts.map(|c| c as f64 / samples as f64)
    }

    #[test]
    fn read_only_is_all_reads() {
        let f = frequencies(KvMix::read_only(), 10_000);
        assert_eq!(f, [1.0, 0.0, 0.0, 0.0]);
        assert_eq!(KvMix::read_only().dependent_fraction(), 0.0);
    }

    #[test]
    fn insert_delete_splits_evenly() {
        let f = frequencies(KvMix::insert_delete(), 100_000);
        assert_eq!(f[0], 0.0);
        assert!((f[2] - 0.5).abs() < 0.02, "inserts {f:?}");
        assert!((f[3] - 0.5).abs() < 0.02, "deletes {f:?}");
        assert_eq!(KvMix::insert_delete().dependent_fraction(), 1.0);
    }

    #[test]
    fn mixed_hits_the_requested_dependent_percentage() {
        let mix = KvMix::mixed(10.0);
        let f = frequencies(mix, 200_000);
        let dep = f[2] + f[3];
        assert!((dep - 0.10).abs() < 0.01, "dependent fraction {dep}");
        assert!((mix.dependent_fraction() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn update_read_is_half_and_half() {
        let f = frequencies(KvMix::update_read(), 100_000);
        assert!((f[0] - 0.5).abs() < 0.02);
        assert!((f[1] - 0.5).abs() < 0.02);
    }

    #[test]
    fn inserts_target_keys_above_the_space() {
        let mix = KvMix::insert_delete();
        let dist = KeyDist::uniform(100);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            if let KvOp::Insert { key, .. } = mix.sample(&dist, &mut rng) {
                assert!(key >= 100);
            }
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_fractions_rejected() {
        let _ = KvMix::new(0.5, 0.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_percentage_rejected() {
        let _ = KvMix::mixed(150.0);
    }
}
