//! Shared correctness checkers for integration tests and the
//! exploration harness.
//!
//! The workspace's end-to-end, recovery and cold-start tests all drive
//! the same closed-loop kvstore clients and check the same per-key
//! linearizability property; the helpers live here once so the
//! schedule-exploration harness ([`mod@crate::explore`]) reuses them
//! verbatim — a history the harness flags would fail the integration
//! tests for the same reason.

use psmr_core::linear::{check_register, OpRecord, RegisterOp, Verdict};
use psmr_core::service::RecoverableService;
use psmr_core::ClientProxy;
use psmr_kvstore::{KvOp, KvResult};
use psmr_recovery::{CheckpointStore, Snapshot};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Keys the closed-loop sessions touch (pre-loaded by
/// `KvService::with_keys(KEYS)`, so key `k` starts at value `k`).
pub const KEYS: u64 = 8;

/// A fresh per-test temp directory (removed if it already exists).
pub fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("psmr-sim-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Executes one store operation through a client proxy.
pub fn kv(client: &mut ClientProxy, op: KvOp) -> KvResult {
    KvResult::decode(&client.execute(op.command(), op.encode()))
}

/// Runs one closed-loop client session: a mix of updates and reads
/// over [`KEYS`] keys, recording invocation/response times for the
/// linearizability check. `c` numbers the session; written values
/// (`c * 1_000_000 + i`) are globally unique as long as every
/// concurrent session uses a distinct `c` and issues fewer than a
/// million ops — sessions of a later incarnation keep the histories
/// disjoint by continuing the numbering (e.g. `10 + c`).
///
/// The write/read decision runs on period 3 while the key stride runs
/// on period 2 (mod [`KEYS`]): both must not share a period, or writes
/// and reads partition onto disjoint keys and every per-key history
/// becomes vacuously linearizable.
pub fn client_session(
    mut client: ClientProxy,
    c: u64,
    ops: u64,
    t0: Instant,
) -> Vec<(u64, OpRecord)> {
    let mut records = Vec::new();
    for i in 0..ops {
        let key = (c * 3 + i) % KEYS;
        let invoked = t0.elapsed().as_nanos() as u64;
        let op = if (i + c).is_multiple_of(3) {
            let value = c * 1_000_000 + i;
            assert_eq!(kv(&mut client, KvOp::Update { key, value }), KvResult::Ok);
            RegisterOp::Write { value }
        } else {
            match kv(&mut client, KvOp::Read { key }) {
                KvResult::Value(v) => RegisterOp::Read { value: Some(v) },
                other => panic!("read failed: {other:?}"),
            }
        };
        let returned = t0.elapsed().as_nanos() as u64;
        records.push((
            key,
            OpRecord {
                invoked,
                returned,
                op,
            },
        ));
    }
    records
}

/// Checks every per-key history for linearizability (initial value of
/// key `k` is `k`, the `with_keys` pre-load). Returns the first
/// violating key with its history on failure — the non-panicking
/// variant the exploration harness needs to keep searching after a
/// failing schedule.
///
/// The Wing&Gong searcher is sized for histories of < 64 ops per key;
/// longer ones are reported as an error rather than silently skipped.
pub fn check_linearizable(records: &[(u64, OpRecord)]) -> Result<(), String> {
    let mut by_key: HashMap<u64, Vec<OpRecord>> = HashMap::new();
    for (key, rec) in records {
        by_key.entry(*key).or_default().push(*rec);
    }
    let mut keys: Vec<u64> = by_key.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let history = &by_key[&key];
        if history.len() >= 64 {
            return Err(format!(
                "key {key}: history of {} ops exceeds the checker's bound",
                history.len()
            ));
        }
        if check_register(history, Some(key)) != Verdict::Linearizable {
            return Err(format!(
                "key {key}: history of {} ops is NOT linearizable: {history:?}",
                history.len()
            ));
        }
    }
    Ok(())
}

/// Panicking wrapper over [`check_linearizable`] for integration tests.
pub fn assert_linearizable(records: Vec<(u64, OpRecord)>) {
    if let Err(e) = check_linearizable(&records) {
        panic!("{e}");
    }
}

/// Polls until replicas 0 and 1 produce byte-identical deterministic
/// snapshots (they converged on the same executed prefix).
pub fn await_convergence(service_of: impl Fn(usize) -> Option<Arc<dyn RecoverableService>>) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let s0 = service_of(0).map(|s| s.snapshot());
        let s1 = service_of(1).map(|s| s.snapshot());
        if s0.is_some() && s0 == s1 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "replicas did not converge within the deadline"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Blocks until the deployment has installed at least one checkpoint a
/// crashed replica can later restart from.
pub fn await_checkpoint(store: &CheckpointStore) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while store.latest_id() == 0 {
        assert!(Instant::now() < deadline, "no checkpoint was ever taken");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(invoked: u64, returned: u64, op: RegisterOp) -> OpRecord {
        OpRecord {
            invoked,
            returned,
            op,
        }
    }

    #[test]
    fn accepts_a_linearizable_history() {
        let records = vec![
            (3, rec(0, 10, RegisterOp::Write { value: 7 })),
            (3, rec(20, 30, RegisterOp::Read { value: Some(7) })),
        ];
        assert!(check_linearizable(&records).is_ok());
        assert_linearizable(records);
    }

    #[test]
    fn flags_a_stale_read_after_an_acknowledged_write() {
        // The write returned before the read was invoked, yet the read
        // observed the initial value: a real-time ordering violation.
        let records = vec![
            (3, rec(0, 10, RegisterOp::Write { value: 7 })),
            (3, rec(20, 30, RegisterOp::Read { value: Some(3) })),
        ];
        let err = check_linearizable(&records).unwrap_err();
        assert!(err.contains("key 3"), "{err}");
        assert!(err.contains("NOT linearizable"), "{err}");
    }

    #[test]
    fn flags_oversized_histories_instead_of_skipping_them() {
        let records: Vec<(u64, OpRecord)> = (0..64)
            .map(|i| (0, rec(i * 2, i * 2 + 1, RegisterOp::Write { value: i })))
            .collect();
        let err = check_linearizable(&records).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
    }
}
