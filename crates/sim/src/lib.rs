//! Deterministic schedule exploration for the P-SMR stack.
//!
//! The protocol cores route every nondeterministic decision — pacing
//! sleeps, timer firings, delivery fan-out, WAL fsync passes — through
//! the injected [`psmr_common::runtime`] abstractions. This crate
//! builds the exploration harness on top:
//!
//! * [`sched`] — a seeded PRNG ([`sched::SimRng`]), the schedule plan
//!   derived purely from a seed ([`sched::SchedulePlan`]), and the
//!   [`sched::SimScheduler`] that perturbs the stack's schedule points
//!   with the plan's bounded delays.
//! * [`mod@explore`] — runs whole kvstore deployments under seeded
//!   schedules across three fault profiles (delivery chaos, crash +
//!   restart, power failure), checks linearizability and the
//!   acknowledged ⇒ fsynced durability invariant after each schedule,
//!   and reports the first failing seed for deterministic replay.
//! * [`check`] — the shared correctness checkers (closed-loop client
//!   sessions, per-key Wing&Gong linearizability, convergence polls)
//!   the workspace integration tests also use.
//!
//! Replay contract: a schedule is *identified by its seed*. The
//! recorded event log is derived from the seed alone (the plan), so
//! running the same seed twice yields identical logs and the same
//! fault injections at the same workload points; thread-level timing
//! inside one schedule still varies with the host, which is exactly
//! why each seed's plan is kept host-independent — re-running a
//! failing seed re-applies the same perturbations.

pub mod check;
pub mod explore;
pub mod sched;

pub use check::{assert_linearizable, check_linearizable, client_session, KEYS};
pub use explore::{explore, run_schedule, ExploreReport, Failure, FaultProfile, SimOptions};
pub use sched::{SchedulePlan, SimRng, SimScheduler};
