//! Seeded schedule plans and the scheduler that applies them.
//!
//! A schedule is identified by a `u64` seed. [`SchedulePlan::generate`]
//! expands the seed into a *plan*: a table of bounded delays for the
//! stack's schedule points plus the fault injections (crash/restart
//! offsets, WAL-sync hold windows, the power-fail point) the driver
//! applies at fixed workload offsets. The plan — and with it the
//! recorded event log — is a pure function of `(seed, profile)`, so
//! replaying a seed re-applies exactly the same perturbations.
//!
//! [`SimScheduler`] implements [`psmr_common::runtime::Scheduler`] over
//! a plan: every [`SchedulePoint`] a protocol thread crosses consumes
//! the next entry of the delay table (round-robin) and stalls the
//! caller for that bounded duration, skewing per-group and per-replica
//! progress without ever wedging the deployment. Delays are the only
//! perturbation the scheduler itself applies; message *drops* stay the
//! business of the existing fault hooks (link cuts, crashed acceptors)
//! because the Paxos cores do not retransmit on every path and an
//! unplanned drop could turn an exploration run into a hang.

use crate::explore::FaultProfile;
use psmr_common::runtime::{SchedulePoint, Scheduler};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// A small, fast, deterministic PRNG (splitmix64). Not for
/// cryptography — for expanding schedule seeds into plans, where the
/// only requirements are determinism and decent dispersion.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `0..n` (`n > 0`).
    pub fn gen_range(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.gen_range(den) < num
    }
}

/// A fault injection the exploration driver applies at a planned
/// offset into the schedule's workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedFault {
    /// Crash replica 1 `crash_after_ms` into the workload, keep it
    /// down for `down_ms`, then restart it (retrying briefly when a
    /// concurrent checkpoint trims the restart cut).
    CrashRestart {
        /// Milliseconds into the workload at which to crash.
        crash_after_ms: u64,
        /// How long the replica stays down before the restart.
        down_ms: u64,
    },
    /// Freeze every group's WAL sync thread for the window, holding
    /// all acknowledgments behind the durability watermark.
    HoldWalSync {
        /// Milliseconds into the workload at which to freeze.
        after_ms: u64,
        /// Length of the frozen window.
        hold_ms: u64,
    },
}

/// The seed-derived plan of one schedule: bounded delays for the
/// protocol's schedule points plus the fault injections to apply.
#[derive(Debug, Clone)]
pub struct SchedulePlan {
    /// The identifying seed.
    pub seed: u64,
    /// Which fault profile shaped the plan.
    pub profile: FaultProfile,
    /// Round-robin delay table consumed at schedule points.
    pub point_delays: Vec<Duration>,
    /// Driver-applied fault injections, in workload-offset order.
    pub faults: Vec<PlannedFault>,
    /// Human-readable event log of the plan. Derived from the seed
    /// alone — identical across replays of the same `(seed, profile)`.
    pub events: Vec<String>,
}

/// Entries in the round-robin delay table.
const DELAY_SLOTS: usize = 61; // prime, so the table does not sync with group counts

impl SchedulePlan {
    /// Expands `(seed, profile)` into a plan. Pure: equal inputs yield
    /// an identical plan and event log.
    pub fn generate(seed: u64, profile: FaultProfile) -> Self {
        // Mix the profile into the stream so the same seed explores
        // different corners under different profiles.
        let mut rng = SimRng::new(seed ^ ((profile as u64 + 1) << 56));
        let mut events = Vec::new();
        events.push(format!("plan seed={seed} profile={profile:?}"));

        let mut point_delays = Vec::with_capacity(DELAY_SLOTS);
        for slot in 0..DELAY_SLOTS {
            // Roughly half the slots stall; bounded well below every
            // protocol timeout so schedules always terminate.
            let micros = if rng.chance(1, 2) {
                rng.gen_range(1500)
            } else {
                0
            };
            if micros > 0 {
                events.push(format!("delay slot={slot} micros={micros}"));
            }
            point_delays.push(Duration::from_micros(micros));
        }

        let mut faults = Vec::new();
        match profile {
            FaultProfile::DeliveryChaos => {}
            FaultProfile::CrashRestart => {
                let crash_after_ms = 5 + rng.gen_range(40);
                let down_ms = 10 + rng.gen_range(60);
                events.push(format!(
                    "crash replica=1 after_ms={crash_after_ms} down_ms={down_ms}"
                ));
                faults.push(PlannedFault::CrashRestart {
                    crash_after_ms,
                    down_ms,
                });
            }
            FaultProfile::PowerFail => {
                let after_ms = 5 + rng.gen_range(30);
                let hold_ms = 30 + rng.gen_range(80);
                events.push(format!(
                    "hold-wal-sync after_ms={after_ms} hold_ms={hold_ms}"
                ));
                events.push("power-fail after workload; cold start; audit acked writes".into());
                faults.push(PlannedFault::HoldWalSync { after_ms, hold_ms });
            }
        }
        Self {
            seed,
            profile,
            point_delays,
            faults,
            events,
        }
    }
}

/// A [`Scheduler`] that perturbs interleavings with a plan's bounded
/// delays. Each crossed schedule point consumes the next delay-table
/// entry; the table is seed-derived, the consumption order follows the
/// host's actual interleaving — which is the point: the same seed
/// applies the same *pressure pattern*, shifting relative progress of
/// the protocol threads.
#[derive(Debug)]
pub struct SimScheduler {
    delays: Vec<Duration>,
    cursor: AtomicUsize,
}

impl SimScheduler {
    /// Builds the scheduler over a plan's delay table.
    pub fn from_plan(plan: &SchedulePlan) -> Self {
        Self {
            delays: plan.point_delays.clone(),
            cursor: AtomicUsize::new(0),
        }
    }
}

impl Scheduler for SimScheduler {
    fn reach(&self, _point: SchedulePoint) {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        let d = self.delays[i % self.delays.len()];
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_disperses() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), xs.len(), "no collisions in a short stream");
        let mut c = SimRng::new(43);
        assert_ne!(c.next_u64(), xs[0], "nearby seeds diverge");
    }

    #[test]
    fn plans_are_pure_functions_of_seed_and_profile() {
        for profile in FaultProfile::all() {
            for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
                let a = SchedulePlan::generate(seed, profile);
                let b = SchedulePlan::generate(seed, profile);
                assert_eq!(a.events, b.events);
                assert_eq!(a.point_delays, b.point_delays);
                assert_eq!(a.faults, b.faults);
            }
        }
    }

    #[test]
    fn profiles_shape_the_planned_faults() {
        let chaos = SchedulePlan::generate(1, FaultProfile::DeliveryChaos);
        assert!(chaos.faults.is_empty());
        let crash = SchedulePlan::generate(1, FaultProfile::CrashRestart);
        assert!(matches!(
            crash.faults[..],
            [PlannedFault::CrashRestart { .. }]
        ));
        let power = SchedulePlan::generate(1, FaultProfile::PowerFail);
        assert!(matches!(
            power.faults[..],
            [PlannedFault::HoldWalSync { .. }]
        ));
        // Different profiles explore different corners of the same seed.
        assert_ne!(chaos.point_delays, crash.point_delays);
    }

    #[test]
    fn scheduler_delays_are_bounded() {
        let plan = SchedulePlan::generate(9, FaultProfile::DeliveryChaos);
        for d in &plan.point_delays {
            assert!(*d < Duration::from_millis(2));
        }
        let sched = SimScheduler::from_plan(&plan);
        let t0 = std::time::Instant::now();
        for _ in 0..10 {
            sched.reach(SchedulePoint::WalFsync { group: 0 });
        }
        assert!(t0.elapsed() < Duration::from_millis(100));
    }
}
