//! Seeded interleaving search over whole kvstore deployments.
//!
//! [`run_schedule`] spawns a real P-SMR deployment with a seeded
//! [`SimScheduler`] injected through the engine's `*_with_runtime`
//! spawn paths, drives a closed-loop workload while applying the
//! plan's fault injections, and checks the outcome:
//!
//! * every profile — the client-observed history is linearizable per
//!   key (the paper's §IV-E claim, checked with the Wing&Gong
//!   searcher);
//! * [`FaultProfile::PowerFail`] — additionally, acknowledged ⇒
//!   fsynced: after the un-fsynced WAL suffix is discarded and the
//!   deployment cold-starts from disk, every key's final value covers
//!   the largest value whose write was acknowledged.
//!
//! [`explore`] sweeps a seed range across the profiles and stops at
//! the first failing schedule, reporting the seed and its plan — the
//! failing run is reproduced by calling `run_schedule` with that seed
//! again (the plan, and with it every injected perturbation, is a
//! pure function of the seed).

use crate::check::{check_linearizable, client_session, kv, unique_dir, KEYS};
use crate::sched::{PlannedFault, SchedulePlan, SimScheduler};
use psmr_common::ids::ReplicaId;
use psmr_common::runtime::{RealClock, Runtime};
use psmr_common::SystemConfig;
use psmr_core::conflict::{CommandClass, DependencySpec};
use psmr_core::engines::{Engine, PsmrEngine};
use psmr_core::linear::OpRecord;
use psmr_kvstore::ops::key_of_payload;
use psmr_kvstore::{KvOp, KvResult, KvService, DELETE, INSERT, READ, UPDATE};
use psmr_recovery::Snapshot;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The fault envelope a schedule explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProfile {
    /// No injected faults — only seeded delays at the stack's schedule
    /// points, skewing delivery, fsync and send interleavings.
    DeliveryChaos,
    /// Crash replica 1 mid-workload, restart it from a coordinated
    /// checkpoint plus the retained log suffix, and require the
    /// restarted replica to converge byte-identically.
    CrashRestart,
    /// Freeze the WAL sync threads mid-workload (holding acks behind
    /// the durability watermark), lose power with the group-commit
    /// window open, cold-start from disk, and audit every acknowledged
    /// write against the recovered state.
    PowerFail,
}

impl FaultProfile {
    /// All profiles, in exploration order.
    pub fn all() -> [FaultProfile; 3] {
        [
            FaultProfile::DeliveryChaos,
            FaultProfile::CrashRestart,
            FaultProfile::PowerFail,
        ]
    }
}

/// Workload shape and harness switches for one schedule.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Worker threads (and per-worker groups) per replica.
    pub mpl: usize,
    /// Concurrent closed-loop clients.
    pub clients: u64,
    /// Commands each client issues.
    pub ops_per_client: u64,
    /// Replace the kvstore's C-Dep with a deliberately broken one that
    /// routes reads of key `k` to the group of key `k + 1` — dependent
    /// read/update pairs no longer share a group, the exact §IV-C
    /// violation the harness exists to catch. The CI canary proves the
    /// search finds it.
    pub inject_ordering_bug: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            mpl: 3,
            clients: 3,
            ops_per_client: 20,
            inject_ordering_bug: false,
        }
    }
}

/// The result of one schedule.
#[derive(Debug)]
pub struct ScheduleOutcome {
    /// The identifying seed.
    pub seed: u64,
    /// The profile explored.
    pub profile: FaultProfile,
    /// The seed-derived event log (see [`SchedulePlan::events`]).
    pub events: Vec<String>,
    /// `Ok` when every checked invariant held.
    pub result: Result<(), String>,
}

/// The first failing schedule of an exploration sweep.
#[derive(Debug)]
pub struct Failure {
    /// Replay seed: `run_schedule(seed, profile, opts)` reproduces the
    /// plan exactly.
    pub seed: u64,
    /// The profile the seed failed under.
    pub profile: FaultProfile,
    /// The failing schedule's plan events.
    pub events: Vec<String>,
    /// What was violated.
    pub reason: String,
}

/// Summary of an exploration sweep.
#[derive(Debug)]
pub struct ExploreReport {
    /// Schedules completed (including the failing one, if any).
    pub schedules_run: usize,
    /// The first failure, or `None` when every schedule passed.
    pub failure: Option<Failure>,
}

/// Reads the schedule budget from `PSMR_SIM_BUDGET`, falling back to
/// `default` — CI scales the search up without touching the code.
pub fn budget_from_env(default: usize) -> usize {
    std::env::var("PSMR_SIM_BUDGET")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The C-Dep under test: the paper's fine-grained spec, or (for the
/// canary) a broken twin whose key extractor misroutes reads by one
/// key. Reads marshal only the 8-byte key while updates append a
/// value, so payload length distinguishes them inside the shared
/// extractor; `Global` commands never consult it.
fn sim_dependency_spec(inject_ordering_bug: bool) -> DependencySpec {
    let mut spec = DependencySpec::new();
    spec.declare(READ, CommandClass::Keyed { writes: false })
        .declare(UPDATE, CommandClass::Keyed { writes: true })
        .declare(INSERT, CommandClass::Global)
        .declare(DELETE, CommandClass::Global);
    if inject_ordering_bug {
        spec.key_extractor(|payload| {
            let key = key_of_payload(payload);
            if payload.len() <= 8 {
                key.wrapping_add(1)
            } else {
                key
            }
        });
    } else {
        spec.key_extractor(key_of_payload);
    }
    spec
}

fn base_cfg(mpl: usize) -> SystemConfig {
    let mut cfg = SystemConfig::new(mpl);
    cfg.replicas(2)
        .batch_delay(Duration::from_micros(100))
        .skip_interval(Duration::from_micros(500));
    cfg
}

fn runtime_for(plan: &SchedulePlan) -> Runtime {
    Runtime::new(Arc::new(RealClock), Arc::new(SimScheduler::from_plan(plan)))
}

/// Joins the client sessions, folding a panicked session into an
/// error (a session only panics when an acknowledged operation failed).
fn join_sessions(
    handles: Vec<std::thread::JoinHandle<Vec<(u64, OpRecord)>>>,
) -> Result<Vec<(u64, OpRecord)>, String> {
    let mut records = Vec::new();
    for h in handles {
        match h.join() {
            Ok(r) => records.extend(r),
            Err(_) => return Err("a client session panicked (operation failed)".into()),
        }
    }
    Ok(records)
}

/// Polls until replicas 0 and 1 converge to byte-identical snapshots,
/// reporting divergence as a finding instead of panicking.
fn converged(engine: &PsmrEngine) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let s0 = engine
            .replica_service(ReplicaId::new(0))
            .map(|s| s.snapshot());
        let s1 = engine
            .replica_service(ReplicaId::new(1))
            .map(|s| s.snapshot());
        if s0.is_some() && s0 == s1 {
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err("replicas did not converge to identical state".into());
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Runs one seeded schedule under `profile` and checks its invariants.
pub fn run_schedule(seed: u64, profile: FaultProfile, opts: SimOptions) -> ScheduleOutcome {
    let plan = SchedulePlan::generate(seed, profile);
    let result = match profile {
        FaultProfile::DeliveryChaos => run_delivery_chaos(&plan, opts),
        FaultProfile::CrashRestart => run_crash_restart(&plan, opts),
        FaultProfile::PowerFail => run_power_fail(&plan, opts),
    };
    ScheduleOutcome {
        seed,
        profile,
        events: plan.events,
        result,
    }
}

fn run_delivery_chaos(plan: &SchedulePlan, opts: SimOptions) -> Result<(), String> {
    let cfg = base_cfg(opts.mpl);
    let engine = PsmrEngine::spawn_with_runtime(
        &cfg,
        sim_dependency_spec(opts.inject_ordering_bug).into_map(),
        || KvService::with_keys(KEYS),
        runtime_for(plan),
    );
    let t0 = Instant::now();
    let handles: Vec<_> = (0..opts.clients)
        .map(|c| {
            let client = engine.client();
            std::thread::spawn(move || client_session(client, c, opts.ops_per_client, t0))
        })
        .collect();
    let records = join_sessions(handles);
    engine.shutdown();
    check_linearizable(&records?)
}

fn run_crash_restart(plan: &SchedulePlan, opts: SimOptions) -> Result<(), String> {
    let mut cfg = base_cfg(opts.mpl);
    cfg.checkpoint_interval(Some(Duration::from_millis(15)));
    let mut engine = PsmrEngine::spawn_recoverable_with_runtime(
        &cfg,
        sim_dependency_spec(opts.inject_ordering_bug).into_map(),
        || KvService::with_keys(KEYS),
        runtime_for(plan),
    );
    let store = engine.checkpoint_store().expect("recoverable deployment");
    crate::check::await_checkpoint(&store);
    let t0 = Instant::now();
    let handles: Vec<_> = (0..opts.clients)
        .map(|c| {
            let client = engine.client();
            std::thread::spawn(move || client_session(client, c, opts.ops_per_client, t0))
        })
        .collect();
    let mut restarted = false;
    for fault in &plan.faults {
        let PlannedFault::CrashRestart {
            crash_after_ms,
            down_ms,
        } = *fault
        else {
            continue;
        };
        std::thread::sleep(Duration::from_millis(crash_after_ms));
        engine
            .crash_replica(ReplicaId::new(1))
            .map_err(|e| format!("crash injection failed: {e:?}"))?;
        std::thread::sleep(Duration::from_millis(down_ms));
        // A restart can race a concurrent checkpoint trimming its cut;
        // retry briefly, and when every attempt loses the race leave
        // the replica down — the surviving replica's history is still
        // checked below.
        for _ in 0..10 {
            if engine.restart_replica(ReplicaId::new(1)).is_ok() {
                restarted = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let records = join_sessions(handles);
    let mut result = check_linearizable(&records?);
    if result.is_ok() && restarted {
        result = converged(&engine);
    }
    engine.shutdown();
    result
}

fn run_power_fail(plan: &SchedulePlan, opts: SimOptions) -> Result<(), String> {
    let dir = unique_dir(&format!("pf-{}", plan.seed));
    let preload = opts.clients * 4;
    let mut cfg = base_cfg(opts.mpl);
    cfg.checkpoint_interval(None)
        .wal_dir(Some(dir.join("wal")))
        .snapshot_dir(Some(dir.join("snap")))
        .wal_pipeline(true);
    let mut engine = PsmrEngine::spawn_recoverable_with_runtime(
        &cfg,
        sim_dependency_spec(opts.inject_ordering_bug).into_map(),
        move || KvService::with_keys(preload),
        runtime_for(plan),
    );

    // Acknowledged phase: each client owns 4 keys and writes monotone
    // values, so "final value ≥ the largest acknowledged value" is the
    // per-key durability audit. The planned hold freezes the fsyncs
    // mid-phase — acks stall behind the durability watermark and
    // resume on release; anything acked before the blackout must
    // survive it.
    let handles: Vec<_> = (0..opts.clients)
        .map(|c| {
            let mut client = engine.client();
            std::thread::spawn(move || {
                let mut acked: Vec<(u64, u64)> = Vec::new();
                for i in 0..opts.ops_per_client {
                    let key = c * 4 + (i % 4);
                    let value = i + 1;
                    if kv(&mut client, KvOp::Update { key, value }) == KvResult::Ok {
                        acked.push((key, value));
                    }
                }
                acked
            })
        })
        .collect();
    for fault in &plan.faults {
        let PlannedFault::HoldWalSync { after_ms, hold_ms } = *fault else {
            continue;
        };
        std::thread::sleep(Duration::from_millis(after_ms));
        engine.hold_wal_sync(true);
        std::thread::sleep(Duration::from_millis(hold_ms));
        engine.hold_wal_sync(false);
    }
    let mut acked_max: HashMap<u64, u64> = HashMap::new();
    for h in handles {
        let acked = h
            .join()
            .map_err(|_| "a power-fail client panicked".to_string())?;
        for (key, value) in acked {
            let max = acked_max.entry(key).or_insert(0);
            *max = (*max).max(value);
        }
    }

    // Doomed phase: freeze the fsyncs for good and submit writes that
    // execute but can never be acknowledged — the open group-commit
    // window the power failure then erases. (The settle sleep lets an
    // in-flight sync pass finish so no doomed append slips under a
    // pre-hold fsync.)
    let mut doomed = engine.client();
    engine.hold_wal_sync(true);
    std::thread::sleep(Duration::from_millis(50));
    for key in 0..preload {
        let op = KvOp::Update {
            key,
            value: 1_000_000 + key,
        };
        doomed.submit(op.command(), op.encode());
    }
    std::thread::sleep(Duration::from_millis(100));
    if doomed.try_recv_response().is_some() {
        engine.crash_all_replicas();
        engine.shutdown_power_fail();
        let _ = std::fs::remove_dir_all(&dir);
        return Err("a response was released for a write whose covering fsync never landed".into());
    }
    drop(doomed);
    engine.crash_all_replicas();
    engine.shutdown_power_fail();

    // Cold start from what survived; every acknowledged write must be
    // in the recovered state.
    let (engine, _reports) = match PsmrEngine::cold_start_with_runtime(
        &cfg,
        sim_dependency_spec(opts.inject_ordering_bug).into_map(),
        move || KvService::with_keys(preload),
        runtime_for(plan),
    ) {
        Ok(up) => up,
        Err(e) => {
            let _ = std::fs::remove_dir_all(&dir);
            return Err(format!("cold start after power failure failed: {e:?}"));
        }
    };
    let mut result = converged(&engine);
    if result.is_ok() {
        let mut client = engine.client();
        for (key, max_acked) in &acked_max {
            match kv(&mut client, KvOp::Read { key: *key }) {
                KvResult::Value(v) if v >= *max_acked => {}
                other => {
                    result = Err(format!(
                        "key {key}: acknowledged value {max_acked} lost across the power \
                         failure (recovered {other:?})"
                    ));
                    break;
                }
            }
        }
        drop(client);
    }
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Sweeps `budget` schedules starting at `base_seed`, cycling through
/// `profiles`, and stops at the first failure. The failing seed and
/// its plan are printed to stderr in a replayable form.
pub fn explore(
    budget: usize,
    base_seed: u64,
    profiles: &[FaultProfile],
    opts: SimOptions,
) -> ExploreReport {
    assert!(!profiles.is_empty(), "explore needs at least one profile");
    let mut schedules_run = 0;
    let mut seed = base_seed;
    while schedules_run < budget {
        for &profile in profiles {
            if schedules_run >= budget {
                break;
            }
            let outcome = run_schedule(seed, profile, opts);
            schedules_run += 1;
            if let Err(reason) = outcome.result {
                eprintln!(
                    "schedule exploration FAILED after {schedules_run} schedules\n\
                     seed={seed} profile={profile:?}\n\
                     reason: {reason}\n\
                     replay: psmr_sim::run_schedule({seed}, FaultProfile::{profile:?}, opts)\n\
                     plan:\n  {}",
                    outcome.events.join("\n  ")
                );
                return ExploreReport {
                    schedules_run,
                    failure: Some(Failure {
                        seed,
                        profile,
                        events: outcome.events,
                        reason,
                    }),
                };
            }
        }
        seed = seed.wrapping_add(1);
    }
    ExploreReport {
        schedules_run,
        failure: None,
    }
}
