//! The schedule-exploration harness run against the real stack.
//!
//! * replay determinism — the same seed yields an identical recorded
//!   event log (the plan is a pure function of the seed);
//! * exploration smoke — a budget of seeded schedules across all
//!   three fault profiles passes on the real protocol
//!   (`PSMR_SIM_BUDGET` scales the budget; CI runs a larger sweep);
//! * the canary — with the deliberately broken C-Dep injected
//!   (reads routed away from the updates they depend on), the search
//!   finds a linearizability violation within the budget. Run
//!   explicitly (it is `#[ignore]` by default): CI's canary job
//!   executes it to prove the harness can catch ordering bugs.
//! * virtual-time deflake — timer-driven components fire when a test
//!   advances a virtual clock, not when the host feels like it.

use psmr_common::runtime::{ClockHandle, VirtualClock};
use psmr_recovery::AutoCheckpointer;
use psmr_sim::explore::budget_from_env;
use psmr_sim::{explore, run_schedule, FaultProfile, SimOptions};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn replaying_a_seed_records_an_identical_event_log() {
    for profile in FaultProfile::all() {
        let a = run_schedule(11, profile, SimOptions::default());
        let b = run_schedule(11, profile, SimOptions::default());
        assert_eq!(
            a.events, b.events,
            "{profile:?}: same seed must record the same event log"
        );
        assert!(a.result.is_ok(), "{profile:?} seed 11: {:?}", a.result);
        assert!(b.result.is_ok(), "{profile:?} seed 11: {:?}", b.result);
    }
}

#[test]
fn exploration_smoke_passes_on_the_real_protocol() {
    // 6 schedules (two per profile) by default; CI raises the budget
    // through PSMR_SIM_BUDGET without touching the code.
    let budget = budget_from_env(6);
    let report = explore(budget, 1, &FaultProfile::all(), SimOptions::default());
    assert_eq!(report.schedules_run, budget);
    if let Some(failure) = &report.failure {
        panic!(
            "exploration found a real failure: seed={} profile={:?}: {}",
            failure.seed, failure.profile, failure.reason
        );
    }
}

/// The canary: prove the harness *can* catch an ordering bug. The
/// injected C-Dep routes reads of key `k` to the group of key `k + 1`,
/// so dependent read/update pairs no longer share a group — the exact
/// requirement of §IV-C — and a read can overtake the acknowledged
/// update it depends on on one replica. The seeded search must observe
/// a non-linearizable history within the budget.
#[test]
#[ignore = "canary for CI: proves the harness detects a seeded ordering bug"]
fn canary_seeded_search_catches_a_misrouted_read_dependency() {
    let opts = SimOptions {
        clients: 4,
        ops_per_client: 14,
        ..SimOptions::default()
    };
    let opts = SimOptions {
        inject_ordering_bug: true,
        ..opts
    };
    let budget = budget_from_env(60);
    let report = explore(budget, 100, &[FaultProfile::DeliveryChaos], opts);
    let failure = report.failure.unwrap_or_else(|| {
        panic!(
            "the canary bug survived {} schedules — the harness cannot \
             catch the ordering violation it was built for",
            report.schedules_run
        )
    });
    assert!(
        failure.reason.contains("NOT linearizable") || failure.reason.contains("panicked"),
        "unexpected failure mode: {}",
        failure.reason
    );
    // And the failing seed replays to the same plan.
    let replay = run_schedule(failure.seed, failure.profile, opts);
    assert_eq!(replay.events, failure.events);
}

#[test]
fn virtual_clock_drives_the_checkpoint_timer_not_host_time() {
    let vc = VirtualClock::manual();
    let fired = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&fired);
    let driver = AutoCheckpointer::spawn_with_clock(
        Duration::from_millis(40),
        Arc::clone(&vc) as ClockHandle,
        move || {
            counter.fetch_add(1, Ordering::SeqCst);
        },
    );
    // Twice the interval of *host* time passes: nothing fires, because
    // the timer runs on frozen virtual time.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(fired.load(Ordering::SeqCst), 0, "host time leaked in");
    // Advance virtual time in slices until the interval elapses; the
    // trigger must fire without any comparable host-time wait.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while fired.load(Ordering::SeqCst) == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "timer never fired on virtual time"
        );
        vc.advance(Duration::from_millis(20));
        std::thread::sleep(Duration::from_millis(2));
    }
    vc.close(); // release the parked sleeper so stop() can join
    driver.stop();
}
