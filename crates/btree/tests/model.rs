//! Model-based property tests: both B+-trees must behave exactly like
//! `std::collections::BTreeMap` under arbitrary operation sequences, and
//! the serial tree must uphold its structural invariants at every step.

use proptest::prelude::*;
use psmr_btree::{BPlusTree, ConcurrentBPlusTree};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    Update(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // A small key space maximizes collisions, which is where bugs live.
    let key = 0u64..200;
    prop_oneof![
        (key.clone(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        key.clone().prop_map(Op::Remove),
        key.clone().prop_map(Op::Get),
        (key, any::<u64>()).prop_map(|(k, v)| Op::Update(k, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn serial_tree_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let mut tree = BPlusTree::new();
        let mut model = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => prop_assert_eq!(tree.insert(k, v), model.insert(k, v)),
                Op::Remove(k) => prop_assert_eq!(tree.remove(&k), model.remove(&k)),
                Op::Get(k) => prop_assert_eq!(tree.get(&k), model.get(&k)),
                Op::Update(k, v) => {
                    let t = tree.get_mut(&k).map(|slot| *slot = v).is_some();
                    let m = model.get_mut(&k).map(|slot| *slot = v).is_some();
                    prop_assert_eq!(t, m);
                }
            }
        }
        tree.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(tree.len(), model.len());
        let tree_pairs: Vec<(u64, u64)> = tree.iter().map(|(k, v)| (k, *v)).collect();
        let model_pairs: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(tree_pairs, model_pairs);
    }

    #[test]
    fn concurrent_tree_matches_btreemap_sequentially(
        ops in prop::collection::vec(op_strategy(), 1..400)
    ) {
        let tree: ConcurrentBPlusTree<u64> = ConcurrentBPlusTree::new();
        let mut model = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v), model.insert(k, v).is_none());
                }
                Op::Remove(k) => prop_assert_eq!(tree.remove(&k), model.remove(&k)),
                Op::Get(k) => prop_assert_eq!(tree.get(&k), model.get(&k).copied()),
                Op::Update(k, v) => {
                    let m = model.get_mut(&k).map(|slot| *slot = v).is_some();
                    prop_assert_eq!(tree.update(k, v), m);
                }
            }
        }
        prop_assert_eq!(tree.len(), model.len());
        let keys: Vec<u64> = model.keys().copied().collect();
        prop_assert_eq!(tree.keys(), keys);
    }

    /// Insert-heavy sequences with large keys force deep trees and splits.
    #[test]
    fn serial_tree_bulk_insert_then_drain(mut keys in prop::collection::vec(any::<u64>(), 1..500)) {
        let mut tree = BPlusTree::new();
        for (i, &k) in keys.iter().enumerate() {
            tree.insert(k, i as u64);
        }
        tree.check_invariants().map_err(TestCaseError::fail)?;
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(tree.len(), keys.len());
        for &k in &keys {
            prop_assert!(tree.remove(&k).is_some());
            }
        prop_assert!(tree.is_empty());
        tree.check_invariants().map_err(TestCaseError::fail)?;
    }
}
