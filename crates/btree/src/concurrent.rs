//! A lock-coupling concurrent B+-tree.
//!
//! This is the workspace's stand-in for Berkeley DB's lock-based in-memory
//! B-tree (the `BDB` baseline of the paper's evaluation, §VI-B): a
//! multithreaded store where *locks* — not a scheduler or an ordering
//! protocol — synchronize command execution.
//!
//! Traversals use lock coupling ("crabbing"):
//!
//! * **reads** take read locks hand-over-hand: lock the child, release the
//!   parent;
//! * **writes** take write locks down the path and release all ancestors as
//!   soon as the current node is *safe* (an insert cannot split it). Splits
//!   therefore happen with the affected ancestor path still locked.
//!
//! Every operation pays the per-node latching cost, which is the relevant
//! behavioural property of the baseline: throughput stops scaling once lock
//! traffic dominates (Figure 5 of the paper: BDB peaks around 4 threads).
//!
//! Deletes remove keys from leaves without rebalancing (lazy deletion, as
//! in several production stores); the tree never returns wrong results but
//! may keep underfull leaves after heavy deletion.

use parking_lot::{ArcRwLockWriteGuard, RawRwLock, RwLock};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Maximum number of keys a node may hold before splitting.
const MAX_KEYS: usize = 64;

type Link<V> = Arc<RwLock<Node<V>>>;

#[derive(Debug)]
enum Node<V> {
    Leaf {
        keys: Vec<u64>,
        vals: Vec<V>,
    },
    Internal {
        keys: Vec<u64>,
        children: Vec<Link<V>>,
    },
}

impl<V> Node<V> {
    fn is_safe_for_insert(&self) -> bool {
        match self {
            Node::Leaf { keys, .. } => keys.len() < MAX_KEYS,
            Node::Internal { keys, .. } => keys.len() < MAX_KEYS,
        }
    }

    fn child_index(keys: &[u64], key: u64) -> usize {
        keys.partition_point(|k| *k <= key)
    }
}

/// A thread-safe B+-tree synchronized by per-node reader-writer locks.
///
/// Cloning the handle shares the underlying tree.
///
/// # Example
///
/// ```
/// use psmr_btree::ConcurrentBPlusTree;
///
/// let tree: ConcurrentBPlusTree<u64> = ConcurrentBPlusTree::new();
/// tree.insert(1, 10);
/// assert_eq!(tree.get(&1), Some(10));
/// assert_eq!(tree.remove(&1), Some(10));
/// ```
#[derive(Debug)]
pub struct ConcurrentBPlusTree<V> {
    /// Lock order: `root_holder` first, then nodes top-down. The holder
    /// indirection lets inserts replace the root when it splits.
    root_holder: Arc<RwLock<Link<V>>>,
    len: Arc<AtomicUsize>,
}

impl<V> Clone for ConcurrentBPlusTree<V> {
    fn clone(&self) -> Self {
        Self {
            root_holder: Arc::clone(&self.root_holder),
            len: Arc::clone(&self.len),
        }
    }
}

impl<V: Clone + Send + Sync + 'static> ConcurrentBPlusTree<V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self {
            root_holder: Arc::new(RwLock::new(Arc::new(RwLock::new(Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
            })))),
            len: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Number of key/value pairs stored.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Returns whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a key, cloning the value out (readers hold node locks only
    /// while traversing).
    pub fn get(&self, key: &u64) -> Option<V> {
        let root_guard = self.root_holder.read();
        let mut node = Arc::clone(&root_guard);
        drop(root_guard);
        loop {
            let guard = node.read_arc();
            match &*guard {
                Node::Leaf { keys, vals } => {
                    return keys.binary_search(key).ok().map(|i| vals[i].clone());
                }
                Node::Internal { keys, children } => {
                    let next = Arc::clone(&children[Node::<V>::child_index(keys, *key)]);
                    drop(guard); // release parent after child is resolved
                    node = next;
                }
            }
        }
    }

    /// Updates the value of an existing key. Returns `false` if the key is
    /// absent (matching the paper's `update` semantics: an error code when
    /// the key does not exist).
    pub fn update(&self, key: u64, value: V) -> bool {
        let root_guard = self.root_holder.read();
        let mut node = Arc::clone(&root_guard);
        drop(root_guard);
        loop {
            // Read-couple down to the leaf; only the leaf needs a write lock.
            let is_leaf = matches!(&*node.read_arc(), Node::Leaf { .. });
            if is_leaf {
                let mut guard = node.write_arc();
                match &mut *guard {
                    Node::Leaf { keys, vals } => {
                        return match keys.binary_search(&key) {
                            Ok(i) => {
                                vals[i] = value;
                                true
                            }
                            Err(_) => false,
                        };
                    }
                    // The node cannot change kind: splits replace children
                    // vectors but a leaf stays a leaf.
                    Node::Internal { .. } => unreachable!("leaf changed kind"),
                }
            }
            let guard = node.read_arc();
            match &*guard {
                Node::Internal { keys, children } => {
                    let next = Arc::clone(&children[Node::<V>::child_index(keys, key)]);
                    drop(guard);
                    node = next;
                }
                Node::Leaf { .. } => continue, // re-check with write lock
            }
        }
    }

    /// Inserts a key/value pair, returning whether the key was new.
    pub fn insert(&self, key: u64, value: V) -> bool {
        // Write-crabbing: hold the path of write guards, releasing all
        // ancestors whenever the current node cannot split.
        let root_holder_guard = self.root_holder.write();
        let root = Arc::clone(&root_holder_guard);
        let mut path: Vec<ArcRwLockWriteGuard<RawRwLock, Node<V>>> = Vec::new();
        let mut holder: Option<parking_lot::RwLockWriteGuard<'_, Link<V>>> =
            Some(root_holder_guard);
        let mut node = root;
        loop {
            let guard = node.write_arc();
            if guard.is_safe_for_insert() {
                path.clear();
                holder = None;
            }
            match &*guard {
                Node::Leaf { .. } => {
                    path.push(guard);
                    break;
                }
                Node::Internal { keys, children } => {
                    let next = Arc::clone(&children[Node::<V>::child_index(keys, key)]);
                    path.push(guard);
                    node = next;
                }
            }
        }

        // Insert into the (write-locked) leaf.
        let mut leaf = path.pop().expect("leaf guard");
        let mut split = match &mut *leaf {
            Node::Leaf { keys, vals } => match keys.binary_search(&key) {
                Ok(i) => {
                    vals[i] = value;
                    return false;
                }
                Err(i) => {
                    keys.insert(i, key);
                    vals.insert(i, value);
                    self.len.fetch_add(1, Ordering::Relaxed);
                    if keys.len() > MAX_KEYS {
                        let mid = keys.len() / 2;
                        let rk = keys.split_off(mid);
                        let rv = vals.split_off(mid);
                        let sep = rk[0];
                        Some((
                            sep,
                            Arc::new(RwLock::new(Node::Leaf { keys: rk, vals: rv })),
                        ))
                    } else {
                        None
                    }
                }
            },
            Node::Internal { .. } => unreachable!("descent ends at a leaf"),
        };
        drop(leaf);

        // Propagate splits up the retained (locked) ancestor path.
        while let Some((sep, right)) = split.take() {
            match path.pop() {
                Some(mut parent) => {
                    match &mut *parent {
                        Node::Internal { keys, children } => {
                            let idx = keys.partition_point(|k| *k < sep);
                            keys.insert(idx, sep);
                            children.insert(idx + 1, right);
                            if keys.len() > MAX_KEYS {
                                let mid = keys.len() / 2;
                                let promoted = keys[mid];
                                let rk = keys.split_off(mid + 1);
                                keys.pop();
                                let rc = children.split_off(mid + 1);
                                split = Some((
                                    promoted,
                                    Arc::new(RwLock::new(Node::Internal {
                                        keys: rk,
                                        children: rc,
                                    })),
                                ));
                            }
                        }
                        Node::Leaf { .. } => unreachable!("parents are internal"),
                    }
                    drop(parent);
                }
                None => {
                    // The root itself split: grow the tree. The holder write
                    // guard was retained because the whole path was unsafe.
                    let mut holder_guard =
                        holder.take().expect("root split retains the holder lock");
                    let old_root = Arc::clone(&holder_guard);
                    *holder_guard = Arc::new(RwLock::new(Node::Internal {
                        keys: vec![sep],
                        children: vec![old_root, right],
                    }));
                }
            }
        }
        true
    }

    /// Removes a key, returning its value if present (lazy deletion: leaves
    /// are not rebalanced).
    pub fn remove(&self, key: &u64) -> Option<V> {
        let root_guard = self.root_holder.read();
        let mut node = Arc::clone(&root_guard);
        drop(root_guard);
        loop {
            let is_leaf = matches!(&*node.read_arc(), Node::Leaf { .. });
            if is_leaf {
                let mut guard = node.write_arc();
                match &mut *guard {
                    Node::Leaf { keys, vals } => {
                        return match keys.binary_search(key) {
                            Ok(i) => {
                                keys.remove(i);
                                let v = vals.remove(i);
                                self.len.fetch_sub(1, Ordering::Relaxed);
                                Some(v)
                            }
                            Err(_) => None,
                        };
                    }
                    Node::Internal { .. } => unreachable!("leaf changed kind"),
                }
            }
            let guard = node.read_arc();
            match &*guard {
                Node::Internal { keys, children } => {
                    let next = Arc::clone(&children[Node::<V>::child_index(keys, *key)]);
                    drop(guard);
                    node = next;
                }
                Node::Leaf { .. } => continue,
            }
        }
    }

    /// Collects all keys in ascending order (snapshot by subtree; intended
    /// for tests, not the hot path).
    pub fn keys(&self) -> Vec<u64> {
        fn walk<V: Clone>(node: &Link<V>, out: &mut Vec<u64>) {
            let guard = node.read();
            match &*guard {
                Node::Leaf { keys, .. } => out.extend_from_slice(keys),
                Node::Internal { children, .. } => {
                    let kids: Vec<_> = children.iter().map(Arc::clone).collect();
                    drop(guard);
                    for child in kids {
                        walk(&child, out);
                    }
                }
            }
        }
        let root = Arc::clone(&self.root_holder.read());
        let mut out = Vec::new();
        walk(&root, &mut out);
        out
    }

    /// Collects all `(key, value)` pairs in ascending key order in one
    /// in-order walk (snapshot by subtree, like [`ConcurrentBPlusTree::keys`];
    /// exact only on a quiesced tree — checkpoints guarantee that).
    pub fn pairs(&self) -> Vec<(u64, V)> {
        fn walk<V: Clone>(node: &Link<V>, out: &mut Vec<(u64, V)>) {
            let guard = node.read();
            match &*guard {
                Node::Leaf { keys, vals } => {
                    out.extend(keys.iter().copied().zip(vals.iter().cloned()));
                }
                Node::Internal { children, .. } => {
                    let kids: Vec<_> = children.iter().map(Arc::clone).collect();
                    drop(guard);
                    for child in kids {
                        walk(&child, out);
                    }
                }
            }
        }
        let root = Arc::clone(&self.root_holder.read());
        let mut out = Vec::with_capacity(self.len());
        walk(&root, &mut out);
        out
    }
}

impl<V: Clone + Send + Sync + 'static> Default for ConcurrentBPlusTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Checkpoint support for the `u64 → u64` instantiation the key-value
/// baselines use: the same deterministic `(count, ascending pairs)` layout
/// as the serial-tree snapshots in `psmr-kvstore`, so both trees restore
/// from each other's checkpoints.
///
/// Snapshots walk the tree without a global lock, so they are only
/// meaningful on a quiesced tree — exactly what the recovery subsystem
/// guarantees when it executes a `CHECKPOINT` at a consistent cut.
impl psmr_recovery::Snapshot for ConcurrentBPlusTree<u64> {
    fn snapshot(&self) -> Vec<u8> {
        psmr_recovery::encode_kv_pairs(&self.pairs())
    }

    fn restore(&self, snapshot: &[u8]) -> Result<(), psmr_recovery::RestoreError> {
        let pairs = psmr_recovery::decode_kv_pairs(snapshot)?;
        // Build the replacement off to the side (no contention, no
        // remove-side rebalancing) and swap it in under the root lock.
        let rebuilt: ConcurrentBPlusTree<u64> = ConcurrentBPlusTree::new();
        for (key, value) in pairs {
            rebuilt.insert(key, value);
        }
        let new_root = Arc::clone(&rebuilt.root_holder.read());
        *self.root_holder.write() = new_root;
        self.len.store(rebuilt.len(), Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn basic_insert_get_remove() {
        let tree: ConcurrentBPlusTree<u64> = ConcurrentBPlusTree::new();
        assert!(tree.insert(1, 10));
        assert!(!tree.insert(1, 11), "duplicate key overwrites");
        assert_eq!(tree.get(&1), Some(11));
        assert_eq!(tree.remove(&1), Some(11));
        assert_eq!(tree.remove(&1), None);
        assert!(tree.is_empty());
    }

    #[test]
    fn update_only_touches_existing_keys() {
        let tree: ConcurrentBPlusTree<u64> = ConcurrentBPlusTree::new();
        assert!(!tree.update(5, 50), "absent key");
        tree.insert(5, 50);
        assert!(tree.update(5, 55));
        assert_eq!(tree.get(&5), Some(55));
    }

    #[test]
    fn splits_keep_all_keys_reachable() {
        let tree: ConcurrentBPlusTree<u64> = ConcurrentBPlusTree::new();
        for k in 0..20_000u64 {
            tree.insert(k, k * 2);
        }
        assert_eq!(tree.len(), 20_000);
        for k in [0u64, 63, 64, 65, 9_999, 19_999] {
            assert_eq!(tree.get(&k), Some(k * 2), "key {k}");
        }
        let keys = tree.keys();
        assert_eq!(keys.len(), 20_000);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted and unique");
    }

    #[test]
    fn reverse_and_interleaved_insertion_orders() {
        let tree: ConcurrentBPlusTree<u64> = ConcurrentBPlusTree::new();
        for k in (0..5_000u64).rev() {
            tree.insert(k, k);
        }
        for k in 5_000..10_000u64 {
            tree.insert(k, k);
        }
        assert_eq!(tree.keys(), (0..10_000u64).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let tree: ConcurrentBPlusTree<u64> = ConcurrentBPlusTree::new();
        let threads = 8;
        let per = 5_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let tree = tree.clone();
                thread::spawn(move || {
                    for i in 0..per {
                        tree.insert(t * per + i, i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tree.len() as u64, threads * per);
        let keys = tree.keys();
        assert_eq!(keys.len() as u64, threads * per);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn concurrent_mixed_readers_and_writers() {
        let tree: ConcurrentBPlusTree<u64> = ConcurrentBPlusTree::new();
        for k in 0..10_000u64 {
            tree.insert(k, k);
        }
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let tree = tree.clone();
                thread::spawn(move || {
                    for i in 0..5_000u64 {
                        let k = (i * 4 + t) % 10_000;
                        tree.update(k, k + 1);
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4u64)
            .map(|t| {
                let tree = tree.clone();
                thread::spawn(move || {
                    let mut seen = 0u64;
                    for i in 0..5_000u64 {
                        let k = (i * 7 + t) % 10_000;
                        if let Some(v) = tree.get(&k) {
                            assert!(v == k || v == k + 1, "value is old or new, not torn");
                            seen += 1;
                        }
                    }
                    seen
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        for r in readers {
            assert_eq!(r.join().unwrap(), 5_000, "all keys present throughout");
        }
    }

    #[test]
    fn concurrent_insert_remove_converges() {
        let tree: ConcurrentBPlusTree<u64> = ConcurrentBPlusTree::new();
        // Writers insert even keys, removers delete them after insertion;
        // an insert/remove pair always leaves the tree without the key.
        for k in 0..2_000u64 {
            tree.insert(k, k);
        }
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let tree = tree.clone();
                thread::spawn(move || {
                    for i in 0..500u64 {
                        let k = t * 500 + i;
                        tree.remove(&k);
                        tree.insert(k + 10_000, k);
                        tree.remove(&(k + 10_000));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tree.len(), 0);
        assert!(tree.keys().is_empty());
    }

    #[test]
    fn clone_shares_state() {
        let tree: ConcurrentBPlusTree<u64> = ConcurrentBPlusTree::new();
        let clone = tree.clone();
        tree.insert(1, 1);
        assert_eq!(clone.get(&1), Some(1));
        assert_eq!(clone.len(), 1);
    }

    #[test]
    fn snapshot_restore_round_trips() {
        use psmr_recovery::Snapshot;
        let tree: ConcurrentBPlusTree<u64> = ConcurrentBPlusTree::new();
        for k in 0..300u64 {
            tree.insert(k * 7, k);
        }
        let snap = tree.snapshot();
        // A twin with the same contents snapshots identical bytes.
        let twin: ConcurrentBPlusTree<u64> = ConcurrentBPlusTree::new();
        for k in (0..300u64).rev() {
            twin.insert(k * 7, k);
        }
        assert_eq!(twin.snapshot(), snap);
        // Restoring into a divergent tree reproduces the state exactly.
        let recovered: ConcurrentBPlusTree<u64> = ConcurrentBPlusTree::new();
        recovered.insert(9_999, 1);
        recovered.restore(&snap).expect("restores");
        assert_eq!(recovered.len(), 300);
        assert_eq!(recovered.get(&9_999), None);
        assert_eq!(recovered.get(&(299 * 7)), Some(299));
        assert_eq!(recovered.snapshot(), snap);
    }

    #[test]
    fn malformed_snapshots_are_rejected() {
        use psmr_recovery::Snapshot;
        let tree: ConcurrentBPlusTree<u64> = ConcurrentBPlusTree::new();
        assert!(tree.restore(&[1, 2]).is_err(), "truncated header");
        let mut bad = 3u64.to_le_bytes().to_vec();
        bad.extend_from_slice(&[0u8; 16]); // claims 3 pairs, carries 1
        assert!(tree.restore(&bad).is_err(), "length mismatch");
    }
}
