//! B+-trees: the storage substrate of the key-value store (paper §V-A).
//!
//! Two implementations:
//!
//! * [`serial::BPlusTree`] — a complete single-threaded B+-tree with node
//!   splitting on insert and borrowing/merging on delete. This is the store
//!   each SMR / sP-SMR / P-SMR / no-rep replica executes commands against
//!   (replica-side synchronization is provided by the replication protocol,
//!   not the tree).
//! * [`concurrent::ConcurrentBPlusTree`] — a lock-coupling ("crabbing")
//!   concurrent B+-tree using per-node reader-writer locks. This is the
//!   stand-in for Berkeley DB's lock-based in-memory B-tree (the `BDB`
//!   baseline of the evaluation): threads synchronize with locks instead of
//!   a scheduler, and pay per-node latching on every traversal.
//!
//! Both trees map `u64` keys to values of a caller-chosen type; the paper's
//! store uses 8-byte keys and 8-byte values.
//!
//! # Example
//!
//! ```
//! use psmr_btree::BPlusTree;
//!
//! let mut tree = BPlusTree::new();
//! tree.insert(5, "five");
//! assert_eq!(tree.get(&5), Some(&"five"));
//! assert_eq!(tree.remove(&5), Some("five"));
//! assert!(tree.is_empty());
//! ```

pub mod concurrent;
pub mod serial;

pub use concurrent::ConcurrentBPlusTree;
pub use serial::BPlusTree;
