//! A single-threaded B+-tree.
//!
//! Values live only in leaves; internal nodes carry separator keys. Inserts
//! split overfull nodes (possibly up to the root, growing the tree); deletes
//! rebalance by borrowing from a sibling or merging (possibly shrinking the
//! tree). These multi-node structural updates are exactly why the paper
//! declares `insert` and `delete` dependent on *all* commands (§V-A).

// `Vec<Box<Node>>` is intentional: splits and merges move child slots
// around, and boxing keeps those moves at pointer size for 64-entry nodes.
#![allow(clippy::vec_box)]

/// Maximum number of keys a node may hold before splitting.
const MAX_KEYS: usize = 64;
/// Minimum number of keys a non-root node must hold.
const MIN_KEYS: usize = MAX_KEYS / 2;

#[derive(Debug, Clone)]
enum Node<V> {
    Leaf {
        keys: Vec<u64>,
        vals: Vec<V>,
    },
    Internal {
        /// Separators: child `i` holds keys `< keys[i]`; child `keys.len()`
        /// holds the rest.
        keys: Vec<u64>,
        children: Vec<Box<Node<V>>>,
    },
}

/// What an insert did below: nothing structural, or a split producing a new
/// right sibling with the given separator.
enum InsertEffect<V> {
    Done(Option<V>),
    Split {
        sep: u64,
        right: Box<Node<V>>,
        replaced: Option<V>,
    },
}

impl<V> Node<V> {
    fn new_leaf() -> Self {
        Node::Leaf {
            keys: Vec::new(),
            vals: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Node::Leaf { keys, .. } => keys.len(),
            Node::Internal { keys, .. } => keys.len(),
        }
    }
}

/// A single-threaded B+-tree mapping `u64` keys to values.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct BPlusTree<V> {
    root: Box<Node<V>>,
    len: usize,
}

impl<V> BPlusTree<V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self {
            root: Box::new(Node::new_leaf()),
            len: 0,
        }
    }

    /// Number of key/value pairs stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up a key.
    pub fn get(&self, key: &u64) -> Option<&V> {
        let mut node = &*self.root;
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    return keys.binary_search(key).ok().map(|i| &vals[i]);
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k <= key);
                    node = &children[idx];
                }
            }
        }
    }

    /// Looks up a key and returns a mutable reference to its value.
    pub fn get_mut(&mut self, key: &u64) -> Option<&mut V> {
        let mut node = &mut *self.root;
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    return keys.binary_search(key).ok().map(|i| &mut vals[i]);
                }
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k <= key);
                    node = &mut children[idx];
                }
            }
        }
    }

    /// Inserts a key/value pair, returning the previous value if the key
    /// was present.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        match Self::insert_rec(&mut self.root, key, value) {
            InsertEffect::Done(replaced) => {
                if replaced.is_none() {
                    self.len += 1;
                }
                replaced
            }
            InsertEffect::Split {
                sep,
                right,
                replaced,
            } => {
                if replaced.is_none() {
                    self.len += 1;
                }
                // Grow the tree: a new root with two children.
                let old_root = std::mem::replace(&mut self.root, Box::new(Node::new_leaf()));
                *self.root = Node::Internal {
                    keys: vec![sep],
                    children: vec![old_root, right],
                };
                replaced
            }
        }
    }

    fn insert_rec(node: &mut Node<V>, key: u64, value: V) -> InsertEffect<V> {
        match node {
            Node::Leaf { keys, vals } => match keys.binary_search(&key) {
                Ok(i) => {
                    let old = std::mem::replace(&mut vals[i], value);
                    InsertEffect::Done(Some(old))
                }
                Err(i) => {
                    keys.insert(i, key);
                    vals.insert(i, value);
                    if keys.len() > MAX_KEYS {
                        let mid = keys.len() / 2;
                        let right_keys = keys.split_off(mid);
                        let right_vals = vals.split_off(mid);
                        let sep = right_keys[0];
                        InsertEffect::Split {
                            sep,
                            right: Box::new(Node::Leaf {
                                keys: right_keys,
                                vals: right_vals,
                            }),
                            replaced: None,
                        }
                    } else {
                        InsertEffect::Done(None)
                    }
                }
            },
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| *k <= key);
                match Self::insert_rec(&mut children[idx], key, value) {
                    InsertEffect::Done(replaced) => InsertEffect::Done(replaced),
                    InsertEffect::Split {
                        sep,
                        right,
                        replaced,
                    } => {
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if keys.len() > MAX_KEYS {
                            let mid = keys.len() / 2;
                            // Separator promoted to the parent.
                            let promoted = keys[mid];
                            let right_keys = keys.split_off(mid + 1);
                            keys.pop(); // remove the promoted separator
                            let right_children = children.split_off(mid + 1);
                            InsertEffect::Split {
                                sep: promoted,
                                right: Box::new(Node::Internal {
                                    keys: right_keys,
                                    children: right_children,
                                }),
                                replaced,
                            }
                        } else {
                            InsertEffect::Done(replaced)
                        }
                    }
                }
            }
        }
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &u64) -> Option<V> {
        let removed = Self::remove_rec(&mut self.root, key);
        if removed.is_some() {
            self.len -= 1;
            // Shrink the tree if the root is an internal node with a single
            // child.
            let shrink = matches!(
                &*self.root,
                Node::Internal { children, .. } if children.len() == 1
            );
            if shrink {
                let old_root = std::mem::replace(&mut self.root, Box::new(Node::new_leaf()));
                if let Node::Internal { mut children, .. } = *old_root {
                    self.root = children.pop().expect("single child");
                }
            }
        }
        removed
    }

    fn remove_rec(node: &mut Node<V>, key: &u64) -> Option<V> {
        match node {
            Node::Leaf { keys, vals } => match keys.binary_search(key) {
                Ok(i) => {
                    keys.remove(i);
                    Some(vals.remove(i))
                }
                Err(_) => None,
            },
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k <= key);
                let removed = Self::remove_rec(&mut children[idx], key)?;
                if children[idx].len() < MIN_KEYS {
                    Self::rebalance(keys, children, idx);
                }
                Some(removed)
            }
        }
    }

    /// Fixes an underfull child at `idx` by borrowing from a sibling or
    /// merging with one.
    fn rebalance(keys: &mut Vec<u64>, children: &mut Vec<Box<Node<V>>>, idx: usize) {
        // Try to borrow from the left sibling.
        if idx > 0 && children[idx - 1].len() > MIN_KEYS {
            let (left, right) = children.split_at_mut(idx);
            let left = &mut *left[idx - 1];
            let child = &mut *right[0];
            match (left, child) {
                (Node::Leaf { keys: lk, vals: lv }, Node::Leaf { keys: ck, vals: cv }) => {
                    let k = lk.pop().expect("left has spare");
                    let v = lv.pop().expect("left has spare");
                    ck.insert(0, k);
                    cv.insert(0, v);
                    keys[idx - 1] = ck[0];
                }
                (
                    Node::Internal {
                        keys: lk,
                        children: lc,
                    },
                    Node::Internal {
                        keys: ck,
                        children: cc,
                    },
                ) => {
                    // Rotate through the separator.
                    let sep = keys[idx - 1];
                    let k = lk.pop().expect("left has spare");
                    let c = lc.pop().expect("left has spare");
                    ck.insert(0, sep);
                    cc.insert(0, c);
                    keys[idx - 1] = k;
                }
                _ => unreachable!("siblings at the same depth share a kind"),
            }
            return;
        }
        // Try to borrow from the right sibling.
        if idx + 1 < children.len() && children[idx + 1].len() > MIN_KEYS {
            let (left, right) = children.split_at_mut(idx + 1);
            let child = &mut *left[idx];
            let sib = &mut *right[0];
            match (child, sib) {
                (Node::Leaf { keys: ck, vals: cv }, Node::Leaf { keys: rk, vals: rv }) => {
                    ck.push(rk.remove(0));
                    cv.push(rv.remove(0));
                    keys[idx] = rk[0];
                }
                (
                    Node::Internal {
                        keys: ck,
                        children: cc,
                    },
                    Node::Internal {
                        keys: rk,
                        children: rc,
                    },
                ) => {
                    let sep = keys[idx];
                    ck.push(sep);
                    cc.push(rc.remove(0));
                    keys[idx] = rk.remove(0);
                }
                _ => unreachable!("siblings at the same depth share a kind"),
            }
            return;
        }
        // Merge with a sibling (prefer left).
        let merge_left = idx > 0;
        let (li, ri) = if merge_left {
            (idx - 1, idx)
        } else {
            (idx, idx + 1)
        };
        let right_node = children.remove(ri);
        let sep = keys.remove(li);
        let left_node = &mut *children[li];
        match (left_node, *right_node) {
            (
                Node::Leaf { keys: lk, vals: lv },
                Node::Leaf {
                    keys: mut rk,
                    vals: mut rv,
                },
            ) => {
                lk.append(&mut rk);
                lv.append(&mut rv);
            }
            (
                Node::Internal {
                    keys: lk,
                    children: lc,
                },
                Node::Internal {
                    keys: mut rk,
                    children: mut rc,
                },
            ) => {
                lk.push(sep);
                lk.append(&mut rk);
                lc.append(&mut rc);
            }
            _ => unreachable!("siblings at the same depth share a kind"),
        }
    }

    /// Iterates over all `(key, value)` pairs in ascending key order.
    pub fn iter(&self) -> Iter<'_, V> {
        Iter {
            stack: vec![(&self.root, 0)],
        }
    }

    /// Collects the keys in `[lo, hi)` in ascending order.
    pub fn range_keys(&self, lo: u64, hi: u64) -> Vec<u64> {
        self.iter()
            .map(|(k, _)| k)
            .filter(|k| (lo..hi).contains(k))
            .collect()
    }

    /// Verifies the structural invariants of the tree, returning a
    /// description of the first violation found.
    ///
    /// Used by the property tests; O(n).
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut leaf_depths = Vec::new();
        Self::check_node(&self.root, None, None, 0, true, &mut leaf_depths)?;
        if leaf_depths.windows(2).any(|w| w[0] != w[1]) {
            return Err("leaves at different depths".into());
        }
        let counted: usize = self.iter().count();
        if counted != self.len {
            return Err(format!("len {} != counted {}", self.len, counted));
        }
        Ok(())
    }

    fn check_node(
        node: &Node<V>,
        lo: Option<u64>,
        hi: Option<u64>,
        depth: usize,
        is_root: bool,
        leaf_depths: &mut Vec<usize>,
    ) -> Result<(), String> {
        let in_bounds =
            |k: u64| lo.map(|l| k >= l).unwrap_or(true) && hi.map(|h| k < h).unwrap_or(true);
        match node {
            Node::Leaf { keys, vals } => {
                if keys.len() != vals.len() {
                    return Err("leaf keys/vals length mismatch".into());
                }
                if !is_root && keys.len() < MIN_KEYS.min(1) {
                    return Err("empty non-root leaf".into());
                }
                if keys.windows(2).any(|w| w[0] >= w[1]) {
                    return Err("leaf keys not strictly sorted".into());
                }
                if keys.iter().any(|&k| !in_bounds(k)) {
                    return Err("leaf key outside separator bounds".into());
                }
                if keys.len() > MAX_KEYS {
                    return Err("leaf overfull".into());
                }
                leaf_depths.push(depth);
                Ok(())
            }
            Node::Internal { keys, children } => {
                if children.len() != keys.len() + 1 {
                    return Err("internal fanout mismatch".into());
                }
                if keys.windows(2).any(|w| w[0] >= w[1]) {
                    return Err("internal keys not strictly sorted".into());
                }
                if keys.iter().any(|&k| !in_bounds(k)) {
                    return Err("separator outside bounds".into());
                }
                if !is_root && keys.len() < MIN_KEYS {
                    return Err("internal node underfull".into());
                }
                if keys.len() > MAX_KEYS {
                    return Err("internal node overfull".into());
                }
                for (i, child) in children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { Some(keys[i - 1]) };
                    let chi = if i == keys.len() { hi } else { Some(keys[i]) };
                    Self::check_node(child, clo, chi, depth + 1, false, leaf_depths)?;
                }
                Ok(())
            }
        }
    }
}

impl<V> Default for BPlusTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> FromIterator<(u64, V)> for BPlusTree<V> {
    fn from_iter<I: IntoIterator<Item = (u64, V)>>(iter: I) -> Self {
        let mut tree = Self::new();
        for (k, v) in iter {
            tree.insert(k, v);
        }
        tree
    }
}

impl<V> Extend<(u64, V)> for BPlusTree<V> {
    fn extend<I: IntoIterator<Item = (u64, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

/// In-order iterator over a [`BPlusTree`], produced by [`BPlusTree::iter`].
#[derive(Debug)]
pub struct Iter<'a, V> {
    /// Stack of (node, next child / entry index).
    stack: Vec<(&'a Node<V>, usize)>,
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (u64, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let (node, idx) = self.stack.pop()?;
            match node {
                Node::Leaf { keys, vals } => {
                    if idx < keys.len() {
                        self.stack.push((node, idx + 1));
                        return Some((keys[idx], &vals[idx]));
                    }
                }
                Node::Internal { children, .. } => {
                    if idx < children.len() {
                        self.stack.push((node, idx + 1));
                        self.stack.push((&children[idx], 0));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_behaves() {
        let tree: BPlusTree<i32> = BPlusTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 0);
        assert_eq!(tree.get(&1), None);
        assert!(tree.check_invariants().is_ok());
        assert_eq!(tree.iter().count(), 0);
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut tree = BPlusTree::new();
        assert_eq!(tree.insert(1, "one"), None);
        assert_eq!(tree.insert(2, "two"), None);
        assert_eq!(tree.get(&1), Some(&"one"));
        assert_eq!(tree.get(&2), Some(&"two"));
        assert_eq!(tree.get(&3), None);
        assert_eq!(tree.len(), 2);
    }

    #[test]
    fn insert_replaces_and_returns_old_value() {
        let mut tree = BPlusTree::new();
        tree.insert(7, 70);
        assert_eq!(tree.insert(7, 71), Some(70));
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.get(&7), Some(&71));
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut tree = BPlusTree::new();
        tree.insert(3, 30);
        *tree.get_mut(&3).expect("present") = 33;
        assert_eq!(tree.get(&3), Some(&33));
        assert!(tree.get_mut(&4).is_none());
    }

    #[test]
    fn splits_preserve_order_and_invariants() {
        let mut tree = BPlusTree::new();
        // Enough keys to force several levels of splits.
        for k in (0..10_000u64).rev() {
            tree.insert(k, k * 10);
        }
        assert_eq!(tree.len(), 10_000);
        tree.check_invariants().expect("invariants hold");
        for k in [0u64, 1, 4_999, 9_999] {
            assert_eq!(tree.get(&k), Some(&(k * 10)));
        }
        let collected: Vec<u64> = tree.iter().map(|(k, _)| k).collect();
        assert_eq!(collected, (0..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut tree: BPlusTree<i32> = BPlusTree::new();
        assert_eq!(tree.remove(&9), None);
        tree.insert(1, 1);
        assert_eq!(tree.remove(&9), None);
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn remove_everything_shrinks_to_empty() {
        let mut tree = BPlusTree::new();
        for k in 0..5_000u64 {
            tree.insert(k, k);
        }
        // Remove in an order that exercises borrow-left, borrow-right and
        // merge paths.
        for k in (0..5_000u64).step_by(2) {
            assert_eq!(tree.remove(&k), Some(k), "even key {k}");
        }
        tree.check_invariants().expect("after even removals");
        let mut odd: Vec<u64> = (1..5_000u64).step_by(2).collect();
        odd.reverse();
        for k in odd {
            assert_eq!(tree.remove(&k), Some(k), "odd key {k}");
        }
        assert!(tree.is_empty());
        tree.check_invariants().expect("empty again");
    }

    #[test]
    fn mixed_workload_stays_consistent_with_model() {
        use std::collections::BTreeMap;
        let mut tree = BPlusTree::new();
        let mut model = BTreeMap::new();
        // Deterministic pseudo-random mix.
        let mut state = 0x12345678u64;
        for _ in 0..50_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (state >> 33) % 2_000;
            match state % 4 {
                0 | 1 => {
                    assert_eq!(tree.insert(key, state), model.insert(key, state));
                }
                2 => {
                    assert_eq!(tree.remove(&key), model.remove(&key));
                }
                _ => {
                    assert_eq!(tree.get(&key), model.get(&key));
                }
            }
        }
        tree.check_invariants()
            .expect("invariants after mixed workload");
        assert_eq!(tree.len(), model.len());
        let tree_pairs: Vec<(u64, u64)> = tree.iter().map(|(k, v)| (k, *v)).collect();
        let model_pairs: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(tree_pairs, model_pairs);
    }

    #[test]
    fn range_keys_filters_inclusively_exclusive() {
        let tree: BPlusTree<u64> = (0..100u64).map(|k| (k, k)).collect();
        assert_eq!(tree.range_keys(10, 15), vec![10, 11, 12, 13, 14]);
        assert_eq!(tree.range_keys(95, 200), vec![95, 96, 97, 98, 99]);
        assert!(tree.range_keys(40, 40).is_empty());
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut tree: BPlusTree<u64> = (0..10u64).map(|k| (k, k)).collect();
        tree.extend((10..20u64).map(|k| (k, k)));
        assert_eq!(tree.len(), 20);
        tree.check_invariants().expect("invariants");
    }
}
