//! Process CPU-utilization sampling.
//!
//! Figures 3 and 4 of the paper report CPU usage per technique (in percent,
//! where 100% is one fully used core — the paper shows values up to 800% on
//! its 8-core servers). On Linux we obtain the same metric by sampling the
//! process' utime+stime from `/proc/self/stat` against wall-clock time.
//!
//! On non-Linux platforms (or if `/proc` is unavailable) sampling degrades
//! gracefully: [`CpuSampler::sample_pct`] returns `None`.

use std::fs;
use std::time::Instant;

/// Samples the CPU time consumed by the current process.
///
/// # Example
///
/// ```
/// use psmr_common::cpu::CpuSampler;
///
/// let sampler = CpuSampler::start();
/// // ... run a workload ...
/// if let Some(pct) = sampler.sample_pct() {
///     assert!(pct >= 0.0);
/// }
/// ```
#[derive(Debug)]
pub struct CpuSampler {
    started_wall: Instant,
    started_ticks: Option<u64>,
    ticks_per_sec: f64,
}

impl CpuSampler {
    /// Starts a sampler at the current instant.
    pub fn start() -> Self {
        Self {
            started_wall: Instant::now(),
            started_ticks: read_process_ticks(),
            ticks_per_sec: clock_ticks_per_sec(),
        }
    }

    /// Returns the average CPU utilization since [`CpuSampler::start`], in
    /// percent of one core (e.g. `350.0` means 3.5 cores busy on average).
    ///
    /// Returns `None` when `/proc` accounting is unavailable.
    pub fn sample_pct(&self) -> Option<f64> {
        let start = self.started_ticks?;
        let now = read_process_ticks()?;
        let wall = self.started_wall.elapsed().as_secs_f64();
        if wall <= 0.0 {
            return Some(0.0);
        }
        let cpu_secs = (now.saturating_sub(start)) as f64 / self.ticks_per_sec;
        Some(cpu_secs / wall * 100.0)
    }
}

/// Reads cumulative utime+stime (in clock ticks) of the current process.
fn read_process_ticks() -> Option<u64> {
    let stat = fs::read_to_string("/proc/self/stat").ok()?;
    parse_stat_ticks(&stat)
}

/// Parses fields 14 (utime) and 15 (stime) out of a `/proc/<pid>/stat` line.
///
/// The second field (`comm`) may contain spaces and parentheses, so parsing
/// must resume after the *last* `)` rather than split naively.
fn parse_stat_ticks(stat: &str) -> Option<u64> {
    let after_comm = &stat[stat.rfind(')')? + 1..];
    let fields: Vec<&str> = after_comm.split_whitespace().collect();
    // after_comm starts at field 3 ("state"), so utime/stime are at
    // positions 11 and 12 of this slice.
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some(utime + stime)
}

/// `sysconf(_SC_CLK_TCK)` is almost universally 100 on Linux; we avoid a
/// libc dependency and use that constant, which only scales the report.
fn clock_ticks_per_sec() -> f64 {
    100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn parse_stat_handles_spaces_in_comm() {
        let line = "1234 (my (weird) proc) S 1 1 1 0 -1 4194560 100 0 0 0 \
                    777 333 0 0 20 0 8 0 12345 1000000 100 18446744073709551615";
        // Fields after comm: S 1 1 1 0 -1 4194560 100 0 0 0 777 333 ...
        //                    0 1 2 3 4  5       6   7 8 9 10 11  12
        assert_eq!(parse_stat_ticks(line), Some(777 + 333));
    }

    #[test]
    fn parse_stat_rejects_garbage() {
        assert_eq!(parse_stat_ticks("no parens here"), None);
        assert_eq!(parse_stat_ticks("1 (x) S"), None);
    }

    #[test]
    fn sampler_measures_busy_work_on_linux() {
        let sampler = CpuSampler::start();
        // Burn some CPU so the sample is nonzero with /proc available.
        let mut acc = 0u64;
        let start = Instant::now();
        while start.elapsed() < Duration::from_millis(60) {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        std::hint::black_box(acc);
        // None on non-Linux or without /proc: degrade gracefully.
        if let Some(pct) = sampler.sample_pct() {
            assert!(pct >= 0.0, "pct = {pct}");
        }
    }
}
