//! Strongly typed identifiers.
//!
//! Every identifier in the system is a newtype over a machine integer
//! ([C-NEWTYPE]): confusing a [`GroupId`] with a [`WorkerId`] is a compile
//! error even though both wrap a `usize`.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name($inner);

        impl $name {
            /// Creates an identifier from its raw integer value.
            pub const fn new(raw: $inner) -> Self {
                Self(raw)
            }

            /// Returns the raw integer value.
            pub const fn as_raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(raw: $inner) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for $inner {
            fn from(id: $name) -> $inner {
                id.0
            }
        }
    };
}

id_newtype!(
    /// Identifies a client process (`c_1, c_2, …` in the paper's model).
    ClientId, u64, "c"
);
id_newtype!(
    /// Identifies a server replica (`s_1, …, s_n`).
    ReplicaId, usize, "s"
);
id_newtype!(
    /// Identifies an atomic-multicast group (`g_1, …, g_k` plus `g_all`).
    GroupId, usize, "g"
);
id_newtype!(
    /// Identifies a worker thread within a replica (`t_1, …, t_k`).
    ///
    /// The multiprogramming level (MPL) of the system is the number of
    /// worker identifiers in use. In P-SMR the *i*-th worker of every
    /// replica belongs to group `g_i`, which is why a [`WorkerId`] converts
    /// into a [`GroupId`] (see [`GroupId::from`]).
    WorkerId, usize, "t"
);
id_newtype!(
    /// Identifies a service command *kind* (e.g. `read`, `update`,
    /// `mkdir`). The pair (command id, marshalled parameters) forms a
    /// request payload.
    CommandId, u32, "cmd"
);
id_newtype!(
    /// Uniquely identifies an in-flight request of one client. Clients
    /// allocate request ids sequentially; the pair ([`ClientId`],
    /// [`RequestId`]) is globally unique.
    RequestId, u64, "r"
);

impl From<WorkerId> for GroupId {
    /// The canonical worker→group assignment of P-SMR: worker `t_i`
    /// subscribes to group `g_i`.
    fn from(worker: WorkerId) -> Self {
        GroupId::new(worker.as_raw())
    }
}

impl GroupId {
    /// Returns the worker thread this per-worker group belongs to.
    ///
    /// Only meaningful for the per-worker groups `g_1..g_k`; the caller is
    /// responsible for not applying this to `g_all`-style groups.
    pub const fn worker(self) -> WorkerId {
        WorkerId::new(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_round_trip_raw_values() {
        assert_eq!(ClientId::new(7).as_raw(), 7);
        assert_eq!(ReplicaId::new(2).as_raw(), 2);
        assert_eq!(GroupId::new(3).as_raw(), 3);
        assert_eq!(WorkerId::new(4).as_raw(), 4);
        assert_eq!(CommandId::new(5).as_raw(), 5);
        assert_eq!(RequestId::new(6).as_raw(), 6);
    }

    #[test]
    fn display_uses_domain_prefixes() {
        assert_eq!(ClientId::new(1).to_string(), "c1");
        assert_eq!(ReplicaId::new(0).to_string(), "s0");
        assert_eq!(GroupId::new(9).to_string(), "g9");
        assert_eq!(WorkerId::new(8).to_string(), "t8");
        assert_eq!(CommandId::new(2).to_string(), "cmd2");
        assert_eq!(RequestId::new(3).to_string(), "r3");
    }

    #[test]
    fn worker_and_group_convert_both_ways() {
        let w = WorkerId::new(5);
        let g = GroupId::from(w);
        assert_eq!(g, GroupId::new(5));
        assert_eq!(g.worker(), w);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = HashSet::new();
        set.insert(GroupId::new(1));
        set.insert(GroupId::new(1));
        set.insert(GroupId::new(2));
        assert_eq!(set.len(), 2);
        assert!(GroupId::new(1) < GroupId::new(2));
    }

    #[test]
    fn from_raw_integer_conversions() {
        let g: GroupId = 4usize.into();
        assert_eq!(g, GroupId::new(4));
        let raw: usize = g.into();
        assert_eq!(raw, 4);
    }
}
