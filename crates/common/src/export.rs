//! Metrics exposition: a one-shot text dump and a periodic JSONL
//! snapshotter.
//!
//! Both read a [`MetricsRegistry`] — counters, gauge `(current, max)`
//! pairs and histogram summaries, labeled scopes included. The JSONL
//! snapshotter appends one self-contained JSON object per period to a
//! file, so a run leaves a coarse time series behind without any
//! scrape infrastructure. JSON is hand-formatted: the workspace carries
//! no JSON dependency.

use crate::metrics::MetricsRegistry;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Replaces the two JSON-hostile characters a metric name could in
/// principle carry; label syntax (`{}`, `=`, `,`) passes through.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c == '"' || c == '\\' { '_' } else { c })
        .collect()
}

/// Renders the registry as a human-readable exposition dump: one line
/// per instrument, labeled scopes alongside their rollups.
pub fn expose_text(registry: &MetricsRegistry) -> String {
    let snap = registry.snapshot();
    let mut out = String::new();
    out.push_str("# counters\n");
    for (name, value) in &snap.counters {
        let _ = writeln!(out, "{name} {value}");
    }
    out.push_str("# gauges (current / max)\n");
    for (name, current, max) in &snap.gauges {
        let _ = writeln!(out, "{name} {current} / {max}");
    }
    out.push_str("# histograms (count, mean/p50/p99/max ns)\n");
    for (name, h) in registry.histograms() {
        let _ = writeln!(
            out,
            "{name} {} {}/{}/{}/{}",
            h.count(),
            h.mean().as_nanos(),
            h.percentile(50.0).as_nanos(),
            h.percentile(99.0).as_nanos(),
            h.max().as_nanos()
        );
    }
    out
}

/// Renders one self-contained JSON object of the registry's current
/// state — the line format of [`JsonlSnapshotter`].
pub fn snapshot_json_line(registry: &MetricsRegistry) -> String {
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or(Duration::ZERO)
        .as_millis();
    let snap = registry.snapshot();
    let mut out = String::new();
    let _ = write!(out, "{{\"ts_ms\":{ts_ms},\"counters\":{{");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\"{}\":{value}", sanitize(name));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, current, max)) in snap.gauges.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\"{}\":{{\"current\":{current},\"max\":{max}}}",
            sanitize(name)
        );
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in registry.histograms().iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\"{}\":{{\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
            sanitize(name),
            h.count(),
            h.mean().as_nanos(),
            h.percentile(50.0).as_nanos(),
            h.percentile(99.0).as_nanos(),
            h.max().as_nanos()
        );
    }
    out.push_str("}}");
    out
}

/// A background thread appending one metrics snapshot per period to a
/// JSONL file.
///
/// Stop it explicitly with [`JsonlSnapshotter::stop`] (a final snapshot
/// is appended so even sub-period runs capture something) or let `Drop`
/// do the same.
#[derive(Debug)]
pub struct JsonlSnapshotter {
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
    path: PathBuf,
}

impl JsonlSnapshotter {
    /// Spawns the snapshotter, appending to `path` every `period`.
    ///
    /// # Errors
    ///
    /// Returns the error of opening (creating) `path` for append.
    pub fn spawn(
        registry: &'static MetricsRegistry,
        path: impl Into<PathBuf>,
        period: Duration,
    ) -> io::Result<Self> {
        let path = path.into();
        let mut file: File = OpenOptions::new().create(true).append(true).open(&path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("metrics-jsonl".into())
            .spawn(move || {
                let write_line = |file: &mut File| {
                    let line = snapshot_json_line(registry);
                    let _ = file
                        .write_all(line.as_bytes())
                        .and_then(|()| file.write_all(b"\n"))
                        .and_then(|()| file.flush());
                };
                // First line lands at spawn, not one period in — a
                // recorder that dies young (or a scraper reading right
                // after boot) still sees a snapshot.
                write_line(&mut file);
                while !stop_flag.load(Ordering::Relaxed) {
                    // Sleep in small steps so stop() returns promptly
                    // even with a long period.
                    let mut slept = Duration::ZERO;
                    while slept < period && !stop_flag.load(Ordering::Relaxed) {
                        let step = (period - slept).min(Duration::from_millis(20));
                        thread::sleep(step);
                        slept += step;
                    }
                    write_line(&mut file);
                }
            })
            .expect("spawn metrics-jsonl thread");
        Ok(Self {
            stop,
            handle: Some(handle),
            path,
        })
    }

    /// The file being appended to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stops the thread after one final snapshot and returns the path.
    pub fn stop(mut self) -> PathBuf {
        self.halt();
        self.path.clone()
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for JsonlSnapshotter {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{counters, gauges, global, histograms};

    #[test]
    fn text_dump_lists_every_instrument_kind() {
        let registry = MetricsRegistry::new();
        registry.counter(counters::WAL_APPENDS).add(3);
        registry.gauge(gauges::WAL_INFLIGHT).set(5);
        registry
            .scoped("group", 1)
            .histogram(histograms::WAL_FSYNC_NS)
            .record(Duration::from_micros(80));
        let text = expose_text(&registry);
        assert!(text.contains("wal_appends 3"));
        assert!(text.contains("wal_inflight 5 / 5"));
        assert!(text.contains("wal_fsync_ns{group=1} 1 "));
    }

    #[test]
    fn expose_text_is_deterministic_and_sorted() {
        // Two registries populated with the same instruments in opposite
        // orders must render byte-identically: admin-endpoint diffs and
        // CI log comparisons depend on stable output.
        let names = [
            "net_frames_sent{peer=2}",
            "net_frames_sent",
            "net_frames_sent{peer=0}",
            "commands_executed{replica=1,worker=0}",
            "commands_executed",
        ];
        let forward = MetricsRegistry::new();
        let backward = MetricsRegistry::new();
        for (i, name) in names.iter().enumerate() {
            forward.counter(name).add(i as u64 + 1);
            forward.gauge(&format!("depth_{i}")).set(i as u64);
            forward.histogram(name).record(Duration::from_micros(10));
        }
        for (i, name) in names.iter().enumerate().rev() {
            backward.counter(name).add(i as u64 + 1);
            backward.gauge(&format!("depth_{i}")).set(i as u64);
            backward.histogram(name).record(Duration::from_micros(10));
        }
        let text = expose_text(&forward);
        assert_eq!(text, expose_text(&backward), "registration order leaks");
        assert_eq!(text, expose_text(&forward), "repeated dumps drift");
        // Within each section the lines are sorted by name.
        for section in text.split("# ").skip(1) {
            let keys: Vec<&str> = section
                .lines()
                .skip(1)
                .filter_map(|l| l.split(' ').next())
                .collect();
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            assert_eq!(keys, sorted, "unsorted section:\n{section}");
        }
    }

    #[test]
    fn json_line_is_well_formed() {
        let registry = MetricsRegistry::new();
        registry.counter(counters::WAL_FSYNCS).inc();
        registry.gauge(gauges::DELIVERY_QUEUE_DEPTH).set(2);
        let line = snapshot_json_line(&registry);
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"ts_ms\":"));
        assert!(line.contains("\"wal_fsyncs\":1"));
        assert!(line.contains("\"delivery_queue_depth\":{\"current\":2,\"max\":2}"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn snapshotter_appends_lines_until_stopped() {
        let path = std::env::temp_dir().join(format!(
            "psmr-jsonl-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let snapshotter =
            JsonlSnapshotter::spawn(global(), &path, Duration::from_millis(10)).expect("spawn");
        std::thread::sleep(Duration::from_millis(40));
        let written = snapshotter.stop();
        assert_eq!(written, path);
        let body = std::fs::read_to_string(&path).expect("snapshot file");
        let lines: Vec<&str> = body.lines().collect();
        assert!(!lines.is_empty(), "at least the final snapshot lands");
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        let _ = std::fs::remove_file(&path);
    }
}
