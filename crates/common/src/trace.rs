//! Sampled command-lifecycle tracing.
//!
//! The pipelined hot path crosses many threads — coordinator batching,
//! consensus, WAL append, fan-out, execution, fsync, response release —
//! and an end-to-end latency histogram alone cannot localize a regression
//! to a stage. This module stamps a **sampled** subset of decided batches
//! (1-in-N, [`TraceRecorder::set_sample`], the `trace_sample` config knob)
//! at each well-defined [`Stage`] and folds completed lifecycles into
//! per-stage latency [`Histogram`]s, so one [`TraceReport`] answers
//! "where does the time go?".
//!
//! Stamping is wait-free: a fixed open-addressed table of atomic slots,
//! claimed on the first stamp ([`Stage::Submitted`]) and finalized on the
//! last ([`Stage::Released`]). When the table is contended a trace is
//! dropped (counted, never waited out), and an unclaimed trace makes every
//! later stamp a no-op — tracing never blocks the hot path.
//!
//! The first [`CHAIN_INTERVALS`] intervals telescope: submitted → ordered
//! → WAL-appended → delivered → execute-start → executed → released. Only
//! lifecycles carrying **every** chain stamp are folded in, so the chain
//! means sum exactly to the traced `end_to_end` mean — no unattributed
//! time. `appended_to_durable` (pipelined WAL only) overlaps the chain
//! and is reported separately.

//!
//! In multi-process deployments the chain **spans processes**: the
//! ordering side exports the ages of its `Submitted`/`Ordered`/
//! `WalAppended` stamps as a [`ChainPrefix`] (carried inside the relay
//! envelope), and the executing side re-anchors them onto its own clock
//! with [`TraceRecorder::adopt_prefix`] before stamping
//! `Delivered`/`ExecStart`/`Executed`/`Released` locally — so a
//! follower's report attributes the full end-to-end path, network hop
//! included (transit lands in `appended_to_delivered`).

use crate::metrics::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Lifecycle stages a sampled batch is stamped at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The first command of the batch entered its group's submit queue.
    Submitted = 0,
    /// The batch was decided by consensus and entered delivery.
    Ordered = 1,
    /// The batch was appended to its group's WAL (deployments without a
    /// WAL stamp this immediately after ordering, so the chain closes).
    WalAppended = 2,
    /// A replica worker received the batch from its delivery stream.
    Delivered = 3,
    /// Execution of the batch's first command began.
    ExecStart = 4,
    /// Execution of the batch's first command finished.
    Executed = 5,
    /// A covering `fsync` made the batch durable (pipelined WAL only).
    FsyncDurable = 6,
    /// The first response for the batch was accepted by the issuing
    /// client's proxy — the lifecycle ends where the client observes it.
    Released = 7,
}

const N_STAGES: usize = 8;

/// Names of the aggregated intervals, in [`TraceReport`] order. The first
/// [`CHAIN_INTERVALS`] telescope from `Submitted` to `Released`.
pub const INTERVAL_NAMES: [&str; 8] = [
    "submit_to_ordered",
    "ordered_to_appended",
    "appended_to_delivered",
    "delivered_to_exec",
    "exec",
    "executed_to_released",
    "appended_to_durable",
    "end_to_end",
];

/// How many of [`INTERVAL_NAMES`] form the telescoping chain whose means
/// sum to the `end_to_end` mean.
pub const CHAIN_INTERVALS: usize = 6;

/// The chain stamps in lifecycle order; adjacent pairs bound the first
/// [`CHAIN_INTERVALS`] intervals.
const CHAIN: [Stage; 7] = [
    Stage::Submitted,
    Stage::Ordered,
    Stage::WalAppended,
    Stage::Delivered,
    Stage::ExecStart,
    Stage::Executed,
    Stage::Released,
];

const SLOTS: usize = 1024;
const PROBES: usize = 8;
/// Slot-key sentinel held while one thread folds a finished lifecycle;
/// late stamps see neither `0` nor their key and become no-ops.
const FINALIZING: u64 = u64::MAX;
const SEQ_MASK: u64 = (1 << 48) - 1;

#[derive(Debug)]
struct Slot {
    key: AtomicU64,
    stamps: [AtomicU64; N_STAGES],
}

impl Slot {
    fn new() -> Self {
        Self {
            key: AtomicU64::new(0),
            stamps: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A wait-free recorder of sampled batch lifecycles.
///
/// Instrumented components stamp the process-wide [`global`] recorder;
/// tests and harnesses may hold their own instance.
#[derive(Debug)]
pub struct TraceRecorder {
    epoch: Instant,
    sample: AtomicU64,
    slots: Vec<Slot>,
    intervals: [Histogram; INTERVAL_NAMES.len()],
    traced: AtomicU64,
    dropped: AtomicU64,
}

impl TraceRecorder {
    /// Creates a recorder with sampling **off** (`sample == 0`). The
    /// multicast substrate enables it at spawn from the deployment's
    /// `trace_sample` knob.
    pub fn new() -> Self {
        let mut slots = Vec::with_capacity(SLOTS);
        slots.resize_with(SLOTS, Slot::new);
        Self {
            epoch: Instant::now(),
            sample: AtomicU64::new(0),
            slots,
            intervals: std::array::from_fn(|_| Histogram::new()),
            traced: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Sets the sampling rate: every N-th batch sequence per group is
    /// traced; `0` disables tracing entirely.
    pub fn set_sample(&self, n: u64) {
        self.sample.store(n, Ordering::Relaxed);
    }

    /// The current sampling rate (`0` = off).
    pub fn sample(&self) -> u64 {
        self.sample.load(Ordering::Relaxed)
    }

    /// Whether batch sequence `seq` is in the sample.
    pub fn sampled(&self, seq: u64) -> bool {
        let n = self.sample.load(Ordering::Relaxed);
        n != 0 && seq.is_multiple_of(n)
    }

    fn key(group: usize, seq: u64) -> u64 {
        ((group as u64 + 1) << 48) | (seq & SEQ_MASK)
    }

    fn index(key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 54) as usize % SLOTS
    }

    /// Nanoseconds since the recorder's epoch, offset by one so `0`
    /// always means "not stamped".
    fn stamp_ns(&self, at: Instant) -> u64 {
        let ns = at.saturating_duration_since(self.epoch).as_nanos();
        ns.min(u128::from(u64::MAX - 1)) as u64 + 1
    }

    /// Stamps `stage` for batch `(group, seq)` at the current instant.
    /// A no-op unless `seq` is sampled and (for stages after
    /// [`Stage::Submitted`]) the lifecycle was successfully claimed.
    pub fn stamp(&self, group: usize, seq: u64, stage: Stage) {
        self.stamp_at(group, seq, stage, Instant::now());
    }

    /// Like [`TraceRecorder::stamp`] with an explicit timestamp — used
    /// where the event time precedes the stamping point (a coordinator
    /// stamps `Submitted` with the instant the batch *opened*).
    pub fn stamp_at(&self, group: usize, seq: u64, stage: Stage, at: Instant) {
        if !self.sampled(seq) {
            return;
        }
        let key = Self::key(group, seq);
        let slot = if stage == Stage::Submitted {
            self.claim(key)
        } else {
            self.lookup(key)
        };
        let Some(slot) = slot else { return };
        let t = self.stamp_ns(at);
        // First stamp wins: a batch carries many commands and the first
        // one through each stage defines the batch's stage time.
        let first = slot.stamps[stage as usize]
            .compare_exchange(0, t, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok();
        if first && stage == Stage::Released {
            self.finalize(slot, key);
        }
    }

    /// Stamps [`Stage::FsyncDurable`] for every sampled sequence in
    /// `(after, upto]` — the range one covering `fsync` just made
    /// durable. Called by the WAL sync thread before it publishes the
    /// new watermark, so the stamp always precedes the release.
    pub fn stamp_durable_range(&self, group: usize, after: u64, upto: u64) {
        let n = self.sample.load(Ordering::Relaxed);
        if n == 0 || upto <= after || upto == u64::MAX {
            return;
        }
        let mut seq = (after / n + 1) * n; // first sampled seq > after
        while seq <= upto {
            self.stamp(group, seq, Stage::FsyncDurable);
            seq += n;
        }
    }

    fn claim(&self, key: u64) -> Option<&Slot> {
        let h = Self::index(key);
        for i in 0..PROBES {
            let slot = &self.slots[(h + i) % SLOTS];
            match slot
                .key
                .compare_exchange(0, key, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return Some(slot),
                Err(cur) if cur == key => return Some(slot),
                Err(_) => continue,
            }
        }
        self.dropped.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn lookup(&self, key: u64) -> Option<&Slot> {
        let h = Self::index(key);
        for i in 0..PROBES {
            let slot = &self.slots[(h + i) % SLOTS];
            if slot.key.load(Ordering::Acquire) == key {
                return Some(slot);
            }
        }
        None
    }

    /// Folds a finished lifecycle into the interval histograms and frees
    /// its slot. Exactly one thread gets past the `FINALIZING` swap.
    fn finalize(&self, slot: &Slot, key: u64) {
        if slot
            .key
            .compare_exchange(key, FINALIZING, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let mut st = [0u64; N_STAGES];
        for (i, s) in slot.stamps.iter().enumerate() {
            st[i] = s.load(Ordering::Acquire);
        }
        // Only complete chains are folded in: every chain interval then
        // aggregates the same lifecycles, so their means telescope to
        // exactly the end_to_end mean.
        if CHAIN.iter().all(|s| st[*s as usize] != 0) {
            for (i, pair) in CHAIN.windows(2).enumerate() {
                let d = st[pair[1] as usize].saturating_sub(st[pair[0] as usize]);
                self.intervals[i].record(Duration::from_nanos(d));
            }
            let e2e = st[Stage::Released as usize].saturating_sub(st[Stage::Submitted as usize]);
            self.intervals[7].record(Duration::from_nanos(e2e));
            self.traced.fetch_add(1, Ordering::Relaxed);
        }
        let appended = st[Stage::WalAppended as usize];
        let durable = st[Stage::FsyncDurable as usize];
        if appended != 0 && durable != 0 {
            self.intervals[6].record(Duration::from_nanos(durable.saturating_sub(appended)));
        }
        for s in slot.stamps.iter() {
            s.store(0, Ordering::Relaxed);
        }
        slot.key.store(0, Ordering::Release);
    }

    /// Reads the origin-side prefix of lifecycle `(group, seq)` as ages
    /// relative to `now`, for propagation to another process. Returns
    /// `None` unless the sequence is sampled, its slot is live, and all
    /// three prefix stamps (`Submitted`, `Ordered`, `WalAppended`) are
    /// present — a prefix is only exported once it is complete.
    pub fn chain_prefix(&self, group: usize, seq: u64, now: Instant) -> Option<ChainPrefix> {
        if !self.sampled(seq) {
            return None;
        }
        let slot = self.lookup(Self::key(group, seq))?;
        let submitted = slot.stamps[Stage::Submitted as usize].load(Ordering::Acquire);
        let ordered = slot.stamps[Stage::Ordered as usize].load(Ordering::Acquire);
        let appended = slot.stamps[Stage::WalAppended as usize].load(Ordering::Acquire);
        if submitted == 0 || ordered == 0 || appended == 0 {
            return None;
        }
        Some(ChainPrefix {
            submitted_age_ns: self.stamp_ns(now).saturating_sub(submitted),
            submit_to_ordered_ns: ordered.saturating_sub(submitted),
            ordered_to_appended_ns: appended.saturating_sub(ordered),
        })
    }

    /// Re-anchors a [`ChainPrefix`] received from another process onto
    /// this recorder's clock: `Submitted` lands `submitted_age_ns`
    /// before `now` (the local receive instant), `Ordered` and
    /// `WalAppended` at their recorded offsets after it. Subsequent
    /// local `Delivered`/`ExecStart`/`Executed`/`Released` stamps then
    /// complete the chain, with the wire transit attributed to
    /// `appended_to_delivered`.
    pub fn adopt_prefix(&self, group: usize, seq: u64, prefix: &ChainPrefix, now: Instant) {
        let submitted = now
            .checked_sub(Duration::from_nanos(prefix.submitted_age_ns))
            .unwrap_or(now);
        let ordered = submitted + Duration::from_nanos(prefix.submit_to_ordered_ns);
        let appended = ordered + Duration::from_nanos(prefix.ordered_to_appended_ns);
        self.stamp_at(group, seq, Stage::Submitted, submitted);
        self.stamp_at(group, seq, Stage::Ordered, ordered);
        self.stamp_at(group, seq, Stage::WalAppended, appended);
    }

    /// Lifecycles folded into the chain intervals so far.
    pub fn traced(&self) -> u64 {
        self.traced.load(Ordering::Relaxed)
    }

    /// Sampled lifecycles dropped because the slot table was contended.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshots the aggregated per-stage statistics.
    pub fn report(&self) -> TraceReport {
        let intervals = INTERVAL_NAMES
            .iter()
            .zip(self.intervals.iter())
            .map(|(name, h)| IntervalStats {
                name,
                count: h.count(),
                mean: h.mean(),
                p50: h.percentile(50.0),
                p99: h.percentile(99.0),
                max: h.max(),
            })
            .collect();
        TraceReport {
            intervals,
            traced: self.traced(),
            dropped: self.dropped(),
        }
    }

    /// Clears every aggregate and every in-flight slot. Call between
    /// measured runs (with the pipeline quiesced) so a run's report only
    /// reflects its own lifecycles.
    pub fn reset(&self) {
        for h in &self.intervals {
            h.clear();
        }
        self.traced.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
        for slot in &self.slots {
            for s in &slot.stamps {
                s.store(0, Ordering::Relaxed);
            }
            slot.key.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

/// The origin-side stamps of a lifecycle, expressed relative to the
/// moment the prefix was read ([`TraceRecorder::chain_prefix`]) so it
/// survives the hop between processes whose monotonic clocks share no
/// epoch. All three values are nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainPrefix {
    /// How long before the read instant `Submitted` was stamped.
    pub submitted_age_ns: u64,
    /// `Submitted` → `Ordered`.
    pub submit_to_ordered_ns: u64,
    /// `Ordered` → `WalAppended`.
    pub ordered_to_appended_ns: u64,
}

/// Aggregated statistics of one traced interval.
#[derive(Debug, Clone)]
pub struct IntervalStats {
    /// Interval name (see [`INTERVAL_NAMES`]).
    pub name: &'static str,
    /// Lifecycles folded into this interval.
    pub count: u64,
    /// Arithmetic mean (exact, not bucketed).
    pub mean: Duration,
    /// Median (log-bucketed, ~3% relative error).
    pub p50: Duration,
    /// 99th percentile (log-bucketed).
    pub p99: Duration,
    /// Largest observed value.
    pub max: Duration,
}

/// A snapshot of every aggregated interval plus the trace bookkeeping.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// One entry per [`INTERVAL_NAMES`] name, in that order.
    pub intervals: Vec<IntervalStats>,
    /// Complete lifecycles folded into the chain intervals.
    pub traced: u64,
    /// Sampled lifecycles dropped to slot-table contention.
    pub dropped: u64,
}

impl TraceReport {
    /// The statistics of interval `name`, if present.
    pub fn stat(&self, name: &str) -> Option<&IntervalStats> {
        self.intervals.iter().find(|s| s.name == name)
    }

    /// Sum of the chain-interval means — the traced end-to-end mean
    /// reconstructed stage by stage.
    pub fn chain_sum(&self) -> Duration {
        self.intervals
            .iter()
            .take(CHAIN_INTERVALS)
            .map(|s| s.mean)
            .sum()
    }

    /// Percentage of `measured_e2e` (e.g. a client-side mean latency)
    /// the chain accounts for. Returns `0.0` when `measured_e2e` is
    /// zero or nothing was traced.
    pub fn attributed_pct(&self, measured_e2e: Duration) -> f64 {
        if measured_e2e.is_zero() || self.traced == 0 {
            return 0.0;
        }
        self.chain_sum().as_secs_f64() / measured_e2e.as_secs_f64() * 100.0
    }
}

/// The process-wide recorder every instrumented stage stamps into.
pub fn global() -> &'static TraceRecorder {
    static GLOBAL: OnceLock<TraceRecorder> = OnceLock::new();
    GLOBAL.get_or_init(TraceRecorder::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_chain(rec: &TraceRecorder, group: usize, seq: u64, t0: Instant) {
        let step = Duration::from_millis(1);
        for (i, stage) in CHAIN.iter().enumerate() {
            rec.stamp_at(group, seq, *stage, t0 + step * i as u32);
        }
    }

    #[test]
    fn disabled_recorder_ignores_stamps() {
        let rec = TraceRecorder::new();
        assert_eq!(rec.sample(), 0);
        full_chain(&rec, 0, 0, Instant::now());
        let report = rec.report();
        assert_eq!(report.traced, 0);
        assert!(report.intervals.iter().all(|s| s.count == 0));
    }

    #[test]
    fn sampling_selects_every_nth_sequence() {
        let rec = TraceRecorder::new();
        rec.set_sample(4);
        assert!(rec.sampled(0));
        assert!(!rec.sampled(1));
        assert!(rec.sampled(8));
        rec.set_sample(0);
        assert!(!rec.sampled(0));
    }

    #[test]
    fn complete_chain_telescopes_exactly() {
        let rec = TraceRecorder::new();
        rec.set_sample(1);
        let t0 = Instant::now();
        full_chain(&rec, 2, 7, t0);
        let report = rec.report();
        assert_eq!(report.traced, 1);
        for stat in report.intervals.iter().take(CHAIN_INTERVALS) {
            assert_eq!(stat.count, 1, "{} must have one sample", stat.name);
        }
        let e2e = report.stat("end_to_end").expect("e2e").mean;
        // Means are exact (total/count), so the telescoped sum matches
        // end-to-end to the nanosecond.
        assert_eq!(report.chain_sum(), e2e);
        assert!((report.attributed_pct(e2e) - 100.0).abs() < 1e-9);
        // Finalize freed the slot: the aggregates survive, the slot is
        // reusable for the same key.
        full_chain(&rec, 2, 7, t0);
        assert_eq!(rec.report().traced, 2);
    }

    #[test]
    fn incomplete_chain_is_not_folded() {
        let rec = TraceRecorder::new();
        rec.set_sample(1);
        let t0 = Instant::now();
        rec.stamp_at(0, 3, Stage::Submitted, t0);
        rec.stamp_at(0, 3, Stage::Ordered, t0 + Duration::from_millis(1));
        // No WalAppended/Delivered/Exec* stamps: released closes the
        // lifecycle but nothing is attributed.
        rec.stamp_at(0, 3, Stage::Released, t0 + Duration::from_millis(2));
        let report = rec.report();
        assert_eq!(report.traced, 0);
        assert_eq!(report.stat("end_to_end").expect("e2e").count, 0);
    }

    #[test]
    fn first_stamp_wins_within_a_batch() {
        let rec = TraceRecorder::new();
        rec.set_sample(1);
        let t0 = Instant::now();
        rec.stamp_at(1, 0, Stage::Submitted, t0);
        // A second command of the same batch re-stamps later: ignored.
        rec.stamp_at(1, 0, Stage::Submitted, t0 + Duration::from_millis(50));
        for (i, stage) in CHAIN.iter().enumerate().skip(1) {
            rec.stamp_at(1, 0, *stage, t0 + Duration::from_millis(i as u64));
        }
        let e2e = rec.report().stat("end_to_end").expect("e2e").mean;
        assert!(
            e2e >= Duration::from_millis(5),
            "e2e measured from the first Submitted stamp, got {e2e:?}"
        );
    }

    #[test]
    fn durable_range_stamps_only_sampled_sequences() {
        let rec = TraceRecorder::new();
        rec.set_sample(4);
        let t0 = Instant::now();
        // Open lifecycles for seqs 4 and 8 with an appended stamp.
        for seq in [4u64, 8] {
            rec.stamp_at(0, seq, Stage::Submitted, t0);
            rec.stamp_at(0, seq, Stage::WalAppended, t0 + Duration::from_millis(1));
        }
        rec.stamp_durable_range(0, 3, 9);
        for seq in [4u64, 8] {
            rec.stamp(0, seq, Stage::Released);
        }
        let report = rec.report();
        assert_eq!(report.stat("appended_to_durable").expect("a2d").count, 2);
        // Chain incomplete (no Delivered/Exec stamps): not traced.
        assert_eq!(report.traced, 0);
    }

    #[test]
    fn contended_table_drops_instead_of_blocking() {
        let rec = TraceRecorder::new();
        rec.set_sample(1);
        // Claim more lifecycles than the table holds without releasing.
        for seq in 0..(SLOTS as u64 + 64) {
            rec.stamp(0, seq, Stage::Submitted);
        }
        assert!(rec.dropped() > 0, "overflow must drop, not wedge");
    }

    #[test]
    fn reset_clears_aggregates_and_slots() {
        let rec = TraceRecorder::new();
        rec.set_sample(1);
        full_chain(&rec, 0, 0, Instant::now());
        rec.stamp(0, 1, Stage::Submitted); // left in flight
        assert_eq!(rec.report().traced, 1);
        rec.reset();
        let report = rec.report();
        assert_eq!(report.traced, 0);
        assert!(report.intervals.iter().all(|s| s.count == 0));
        // The in-flight slot was wiped: a fresh lifecycle works.
        full_chain(&rec, 0, 1, Instant::now());
        assert_eq!(rec.report().traced, 1);
    }

    #[test]
    fn chain_prefix_round_trips_across_recorders() {
        // The ordering-side recorder stamps the prefix...
        let origin = TraceRecorder::new();
        origin.set_sample(1);
        let t0 = Instant::now();
        origin.stamp_at(0, 5, Stage::Submitted, t0);
        origin.stamp_at(0, 5, Stage::Ordered, t0 + Duration::from_millis(2));
        origin.stamp_at(0, 5, Stage::WalAppended, t0 + Duration::from_millis(3));
        let read_at = t0 + Duration::from_millis(10);
        let prefix = origin.chain_prefix(0, 5, read_at).expect("complete prefix");
        assert_eq!(prefix.submit_to_ordered_ns, 2_000_000);
        assert_eq!(prefix.ordered_to_appended_ns, 1_000_000);
        assert_eq!(prefix.submitted_age_ns, 10_000_000);

        // ...a second recorder (another process) adopts it and finishes
        // the chain locally: the cross-process chain folds completely.
        let remote = TraceRecorder::new();
        remote.set_sample(1);
        // Anchor the receive instant well after the remote recorder's
        // epoch: in a real process the recorder is created at startup,
        // long before any prefix is adopted.
        let rx = Instant::now() + Duration::from_millis(50);
        remote.adopt_prefix(0, 5, &prefix, rx);
        remote.stamp_at(0, 5, Stage::Delivered, rx);
        remote.stamp_at(0, 5, Stage::ExecStart, rx + Duration::from_millis(1));
        remote.stamp_at(0, 5, Stage::Executed, rx + Duration::from_millis(2));
        remote.stamp_at(0, 5, Stage::Released, rx + Duration::from_millis(3));
        let report = remote.report();
        assert_eq!(report.traced, 1, "adopted chain folds on the remote side");
        let e2e = report.stat("end_to_end").expect("e2e").mean;
        assert_eq!(report.chain_sum(), e2e);
        // Transit (the 10ms age minus the 3ms spent ordering) lands in
        // appended_to_delivered.
        let transit = report.stat("appended_to_delivered").expect("a2d").mean;
        assert_eq!(transit, Duration::from_millis(7));
    }

    #[test]
    fn incomplete_or_unsampled_prefixes_are_not_exported() {
        let rec = TraceRecorder::new();
        rec.set_sample(2);
        let t0 = Instant::now();
        rec.stamp_at(0, 4, Stage::Submitted, t0);
        rec.stamp_at(0, 4, Stage::Ordered, t0);
        // WalAppended missing: no prefix yet.
        assert_eq!(rec.chain_prefix(0, 4, t0), None);
        rec.stamp_at(0, 4, Stage::WalAppended, t0);
        assert!(rec.chain_prefix(0, 4, t0).is_some());
        // Unsampled sequence: never exported.
        assert_eq!(rec.chain_prefix(0, 3, t0), None);
        // Unknown sequence: no slot.
        assert_eq!(rec.chain_prefix(0, 100, t0), None);
    }

    #[test]
    fn global_recorder_is_shared() {
        let a = global();
        let b = global();
        assert!(std::ptr::eq(a, b));
    }
}
