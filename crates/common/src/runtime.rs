//! Injected time and scheduling for the protocol stack.
//!
//! Every nondeterministic decision the replicated cores make — when a
//! timer fires, how long a pacing sleep lasts, whether a simulated
//! network send is delivered — flows through the two traits here:
//!
//! * [`Clock`] — wall-clock reads and sleeps. Production code uses
//!   [`RealClock`] (plain `Instant::now` / `thread::sleep`); tests can
//!   inject a [`VirtualClock`] whose time only moves when the test (or
//!   an idle sleeper, in auto mode) advances it, so timer-driven
//!   behavior is checked in virtual time instead of depending on how
//!   fast the host happens to run.
//! * [`Scheduler`] — interleaving control. The cores announce the
//!   schedule points that matter for protocol correctness (a network
//!   send, an ordered delivery, a WAL fsync) and a test scheduler can
//!   perturb them: drop the message, delay the delivery, stall the
//!   fsync. [`FifoScheduler`] is the production no-op — everything
//!   proceeds immediately in arrival order.
//!
//! A [`Runtime`] bundles one of each and is threaded through the
//! spawn paths (`LiveNet` carries it, so every Paxos group inherits
//! the runtime of the net it communicates over). `Runtime::real()` is
//! the default everywhere; the `psmr-sim` crate builds seeded
//! runtimes on top of these traits to explore interleavings.

use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- Clock

/// A source of time the protocol cores read and sleep on.
///
/// Implementations must be cheap to call from hot paths: `now` backs
/// per-command latency stamps.
pub trait Clock: Send + Sync + fmt::Debug {
    /// The current time in this clock's timebase.
    fn now(&self) -> Instant;

    /// Blocks the calling thread for `d` of this clock's time.
    fn sleep(&self, d: Duration);

    /// Upper bound on how long a blocking wait (channel recv, condvar)
    /// may park on a *real* OS primitive before re-checking deadlines
    /// expressed in this clock's timebase. The real clock returns the
    /// full remaining duration (the OS wait IS the deadline); a virtual
    /// clock returns a short real slice so waiters notice `advance`
    /// calls promptly.
    fn poll_slice(&self, remaining: Duration) -> Duration;

    /// Whether this clock's timebase is decoupled from the host's.
    fn is_virtual(&self) -> bool {
        false
    }
}

/// Shared handle to an injected clock.
pub type ClockHandle = Arc<dyn Clock>;

/// The production clock: host time, host sleeps.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealClock;

impl Clock for RealClock {
    fn now(&self) -> Instant {
        Instant::now()
    }

    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }

    fn poll_slice(&self, remaining: Duration) -> Duration {
        remaining
    }
}

/// How long a virtual-clock waiter parks on the host between checks.
const VIRTUAL_POLL: Duration = Duration::from_millis(1);

struct VirtualState {
    /// Virtual nanoseconds since `epoch`.
    now_ns: u64,
    /// Once closed, every sleep returns immediately — the escape hatch
    /// for shutdown paths whose threads would otherwise wait for an
    /// `advance` that is never coming.
    closed: bool,
}

/// A test clock whose time moves only when advanced.
///
/// Two modes:
///
/// * [`VirtualClock::manual`] — time moves *only* via [`advance`]
///   (and [`close`], which releases all sleepers). Fully deterministic:
///   a sleeper wakes exactly when the test advances past its deadline.
/// * [`VirtualClock::auto`] — as above, but a sleeper that has parked
///   for `slice` of host time with no progress advances the clock to
///   its own deadline ("time passes when everyone is idle"). Keeps
///   whole deployments live without a driving test thread, while still
///   letting tests fast-forward explicitly.
///
/// [`advance`]: VirtualClock::advance
/// [`close`]: VirtualClock::close
pub struct VirtualClock {
    epoch: Instant,
    state: Mutex<VirtualState>,
    tick: Condvar,
    auto_slice: Option<Duration>,
}

impl fmt::Debug for VirtualClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("VirtualClock")
            .field("now_ns", &st.now_ns)
            .field("closed", &st.closed)
            .field("auto_slice", &self.auto_slice)
            .finish()
    }
}

impl VirtualClock {
    fn with_mode(auto_slice: Option<Duration>) -> Arc<Self> {
        Arc::new(VirtualClock {
            epoch: Instant::now(),
            state: Mutex::new(VirtualState {
                now_ns: 0,
                closed: false,
            }),
            tick: Condvar::new(),
            auto_slice,
        })
    }

    /// A clock that moves only on [`advance`](Self::advance)/[`close`](Self::close).
    pub fn manual() -> Arc<Self> {
        Self::with_mode(None)
    }

    /// A clock where idle sleepers self-advance after `slice` host time.
    pub fn auto(slice: Duration) -> Arc<Self> {
        Self::with_mode(Some(slice))
    }

    /// Virtual nanoseconds since the clock was created.
    pub fn elapsed_ns(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).now_ns
    }

    /// Moves virtual time forward and wakes every sleeper whose
    /// deadline has now passed.
    pub fn advance(&self, d: Duration) {
        {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            st.now_ns = st.now_ns.saturating_add(d.as_nanos() as u64);
        }
        self.tick.notify_all();
    }

    /// Releases all current and future sleepers immediately. Call
    /// before tearing down a deployment running on a manual clock.
    pub fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.tick.notify_all();
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Instant {
        let ns = self.state.lock().unwrap_or_else(|e| e.into_inner()).now_ns;
        self.epoch + Duration::from_nanos(ns)
    }

    fn sleep(&self, d: Duration) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let deadline = st.now_ns.saturating_add(d.as_nanos() as u64);
        loop {
            if st.closed || st.now_ns >= deadline {
                return;
            }
            match self.auto_slice {
                Some(slice) => {
                    let (guard, timeout) = self
                        .tick
                        .wait_timeout(st, slice)
                        .unwrap_or_else(|e| e.into_inner());
                    st = guard;
                    if timeout.timed_out() && st.now_ns < deadline {
                        // Everyone is idle: this sleeper is the one that
                        // makes time pass.
                        st.now_ns = deadline;
                        self.tick.notify_all();
                    }
                }
                None => {
                    st = self.tick.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    fn poll_slice(&self, remaining: Duration) -> Duration {
        remaining.min(VIRTUAL_POLL)
    }

    fn is_virtual(&self) -> bool {
        true
    }
}

// ------------------------------------------------------------ Scheduler

/// A point in the protocol where scheduling decisions are observable.
///
/// The cores call [`Scheduler::reach`] when crossing one; a test
/// scheduler may delay the calling thread there (perturbing the
/// interleaving) or record it. Production reaches are no-ops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulePoint {
    /// A message is about to enter a peer's inbox on the simulated net.
    NetSend { from: u64, to: u64 },
    /// An ordered batch is about to fan out to a group's subscribers.
    Delivered { group: u64, seq: u64 },
    /// A WAL fsync pass is about to run for a group's ordered log.
    WalFsync { group: u64 },
}

/// The fate of a simulated network send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendVerdict {
    /// Enqueue into the destination inbox as usual.
    Deliver,
    /// Silently lose the message (the sender never learns).
    Drop,
}

/// Interleaving control for the protocol cores.
///
/// Implementations must never block indefinitely: a delay injected at
/// a schedule point stalls a protocol thread, so it must be bounded.
pub trait Scheduler: Send + Sync + fmt::Debug {
    /// Decides the fate of a simulated network send, *in addition to*
    /// the fault filters (`FaultPlan`, link cuts) the net applies.
    fn on_send(&self, _from: u64, _to: u64) -> SendVerdict {
        SendVerdict::Deliver
    }

    /// Announces that the calling thread is crossing `point`. May
    /// delay the caller (bounded) to perturb the interleaving.
    fn reach(&self, _point: SchedulePoint) {}
}

/// The production scheduler: deliver everything, delay nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {}

// -------------------------------------------------------------- Runtime

/// The injected clock + scheduler pair the spawn paths thread through
/// the stack. Cloning shares both.
#[derive(Clone, Debug)]
pub struct Runtime {
    /// Time source for stamps, pacing sleeps and timeout deadlines.
    pub clock: ClockHandle,
    /// Interleaving control consulted at schedule points.
    pub sched: Arc<dyn Scheduler>,
}

impl Runtime {
    /// Real time, FIFO scheduling — the production runtime.
    pub fn real() -> Self {
        Runtime {
            clock: Arc::new(RealClock),
            sched: Arc::new(FifoScheduler),
        }
    }

    /// A runtime with an injected clock and the no-op scheduler.
    pub fn with_clock(clock: ClockHandle) -> Self {
        Runtime {
            clock,
            sched: Arc::new(FifoScheduler),
        }
    }

    /// A fully custom runtime.
    pub fn new(clock: ClockHandle, sched: Arc<dyn Scheduler>) -> Self {
        Runtime { clock, sched }
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime::real()
    }
}

// -------------------------------------------------- clock-aware waits

/// `Receiver::recv_timeout` with the deadline interpreted in `clock`'s
/// timebase.
///
/// On the real clock this is exactly `rx.recv_timeout(timeout)`. On a
/// virtual clock the wait parks in short host-time slices and re-checks
/// the virtual deadline, so a test that advances the clock expires the
/// timeout without `timeout` of host time passing.
pub fn recv_timeout_via<T>(
    clock: &dyn Clock,
    rx: &crossbeam::channel::Receiver<T>,
    timeout: Duration,
) -> Result<T, crossbeam::channel::RecvTimeoutError> {
    use crossbeam::channel::{RecvTimeoutError, TryRecvError};
    if !clock.is_virtual() {
        return rx.recv_timeout(timeout);
    }
    let deadline = clock.now() + timeout;
    loop {
        match rx.try_recv() {
            Ok(v) => return Ok(v),
            Err(TryRecvError::Disconnected) => return Err(RecvTimeoutError::Disconnected),
            Err(TryRecvError::Empty) => {}
        }
        let now = clock.now();
        if now >= deadline {
            return Err(RecvTimeoutError::Timeout);
        }
        match rx.recv_timeout(clock.poll_slice(deadline - now)) {
            Ok(v) => return Ok(v),
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return Err(RecvTimeoutError::Disconnected),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn real_clock_sleeps_and_reads() {
        let clock = RealClock;
        let before = clock.now();
        clock.sleep(Duration::from_millis(2));
        assert!(clock.now() >= before + Duration::from_millis(2));
        assert!(!clock.is_virtual());
        assert_eq!(
            clock.poll_slice(Duration::from_secs(5)),
            Duration::from_secs(5)
        );
    }

    #[test]
    fn manual_virtual_clock_moves_only_on_advance() {
        let vc = VirtualClock::manual();
        let t0 = vc.now();
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(vc.now(), t0, "host time must not leak into the clock");
        vc.advance(Duration::from_secs(3));
        assert_eq!(vc.now(), t0 + Duration::from_secs(3));
    }

    #[test]
    fn virtual_sleeper_wakes_on_advance_not_host_time() {
        let vc = VirtualClock::manual();
        let woke = Arc::new(AtomicBool::new(false));
        let (vc2, woke2) = (Arc::clone(&vc), Arc::clone(&woke));
        let t = std::thread::spawn(move || {
            vc2.sleep(Duration::from_secs(3600));
            woke2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!woke.load(Ordering::SeqCst), "an hour of virtual time");
        vc.advance(Duration::from_secs(3600));
        t.join().unwrap();
        assert!(woke.load(Ordering::SeqCst));
    }

    #[test]
    fn closed_virtual_clock_releases_sleepers() {
        let vc = VirtualClock::manual();
        let vc2 = Arc::clone(&vc);
        let t = std::thread::spawn(move || vc2.sleep(Duration::from_secs(3600)));
        std::thread::sleep(Duration::from_millis(5));
        vc.close();
        t.join().unwrap();
    }

    #[test]
    fn auto_virtual_clock_self_advances_when_idle() {
        let vc = VirtualClock::auto(Duration::from_millis(5));
        let before = std::time::Instant::now();
        vc.sleep(Duration::from_secs(3600));
        assert!(before.elapsed() < Duration::from_secs(10));
        assert!(vc.elapsed_ns() >= 3600 * 1_000_000_000);
    }

    #[test]
    fn recv_timeout_via_expires_in_virtual_time() {
        let vc = VirtualClock::manual();
        let (_tx, rx) = crossbeam::channel::unbounded::<u64>();
        let vc2 = Arc::clone(&vc);
        let t = std::thread::spawn(move || recv_timeout_via(&*vc2, &rx, Duration::from_secs(3600)));
        std::thread::sleep(Duration::from_millis(10));
        vc.advance(Duration::from_secs(3600));
        assert!(matches!(
            t.join().unwrap(),
            Err(crossbeam::channel::RecvTimeoutError::Timeout)
        ));
    }

    #[test]
    fn recv_timeout_via_delivers_messages() {
        let vc = VirtualClock::manual();
        let (tx, rx) = crossbeam::channel::unbounded::<u64>();
        tx.send(7).unwrap();
        assert_eq!(
            recv_timeout_via(&*vc, &rx, Duration::from_secs(1)).unwrap(),
            7
        );
    }

    #[test]
    fn fifo_scheduler_delivers_everything() {
        let s = FifoScheduler;
        assert_eq!(s.on_send(1, 2), SendVerdict::Deliver);
        s.reach(SchedulePoint::WalFsync { group: 0 });
    }
}
