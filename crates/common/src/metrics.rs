//! Measurement utilities for the evaluation harness.
//!
//! The paper reports, per experiment: throughput in Kilo commands per second
//! (Kcps), CPU utilization, average latency and latency CDFs. This module
//! provides the corresponding instruments:
//!
//! * [`Histogram`] — a log-bucketed latency histogram (HDR-style) with
//!   percentile and CDF extraction,
//! * [`ThroughputMeter`] — counts completed commands over a wall-clock
//!   window,
//! * [`RunSummary`] — the per-technique row printed by each figure binary.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Number of linear sub-buckets per power-of-two bucket. 32 sub-buckets give
/// a worst-case relative error of ~3%, ample for latency CDFs.
const SUB_BUCKETS: usize = 32;
/// Number of power-of-two buckets: covers 1 ns .. ~2^40 ns (~18 minutes).
const POW_BUCKETS: usize = 40;

/// A lock-free, log-bucketed histogram of durations in nanoseconds.
///
/// Recording is wait-free (`fetch_add` on an atomic counter), so worker
/// threads can record latencies on the hot path without coordinating.
///
/// # Example
///
/// ```
/// use psmr_common::metrics::Histogram;
/// use std::time::Duration;
///
/// let h = Histogram::new();
/// h.record(Duration::from_micros(100));
/// h.record(Duration::from_micros(200));
/// assert_eq!(h.count(), 2);
/// assert!(h.mean() >= Duration::from_micros(100));
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(POW_BUCKETS * SUB_BUCKETS);
        buckets.resize_with(POW_BUCKETS * SUB_BUCKETS, || AtomicU64::new(0));
        Self {
            buckets,
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    fn bucket_index(ns: u64) -> usize {
        let ns = ns.max(1);
        let pow = 63 - ns.leading_zeros() as usize; // floor(log2(ns))
        let pow = pow.min(POW_BUCKETS - 1);
        let base = 1u64 << pow;
        // Position within [2^pow, 2^(pow+1)) scaled to SUB_BUCKETS slots.
        let offset = ((ns - base) * SUB_BUCKETS as u64 / base) as usize;
        pow * SUB_BUCKETS + offset.min(SUB_BUCKETS - 1)
    }

    /// Representative (midpoint) value of a bucket, in nanoseconds.
    ///
    /// The midpoint halves the worst-case bias of reporting a bucket
    /// *bound*: percentiles land at most half a sub-bucket off in either
    /// direction instead of up to a full sub-bucket high.
    fn bucket_value(index: usize) -> u64 {
        let pow = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        let base = 1u64 << pow;
        // Midpoint of [base·(1 + sub/SUB), base·(1 + (sub+1)/SUB)).
        base + base * (2 * sub + 1) / (2 * SUB_BUCKETS as u64)
    }

    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.buckets[Self::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Arithmetic mean of the recorded samples.
    ///
    /// Returns zero when the histogram is empty.
    pub fn mean(&self) -> Duration {
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.total_ns.load(Ordering::Relaxed) / count)
    }

    /// Maximum recorded sample.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns.load(Ordering::Relaxed))
    }

    /// Value at the given percentile (`0.0..=100.0`).
    ///
    /// Returns zero when the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `pct` is not within `0.0..=100.0`.
    pub fn percentile(&self, pct: f64) -> Duration {
        assert!(
            (0.0..=100.0).contains(&pct),
            "percentile must be in 0..=100"
        );
        let count = self.count();
        if count == 0 {
            return Duration::ZERO;
        }
        let rank = ((pct / 100.0) * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Duration::from_nanos(Self::bucket_value(i));
            }
        }
        self.max()
    }

    /// Extracts the latency CDF as `(latency, cumulative_fraction)` points,
    /// one per non-empty bucket — the data behind the CDF plots of
    /// Figures 3 and 4.
    pub fn cdf(&self) -> Vec<(Duration, f64)> {
        let count = self.count();
        if count == 0 {
            return Vec::new();
        }
        let mut points = Vec::new();
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let c = bucket.load(Ordering::Relaxed);
            if c > 0 {
                seen += c;
                points.push((
                    Duration::from_nanos(Self::bucket_value(i)),
                    seen as f64 / count as f64,
                ));
            }
        }
        points
    }

    /// Clears every bucket and aggregate back to the empty state.
    ///
    /// Not atomic with respect to concurrent recording — call between
    /// runs, when the recording threads are quiesced.
    pub fn clear(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }

    /// Merges another histogram's counts into this one.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let c = theirs.load(Ordering::Relaxed);
            if c > 0 {
                mine.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.total_ns
            .fetch_add(other.total_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_ns
            .fetch_max(other.max_ns.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Counts completed operations and converts them into a rate.
///
/// # Example
///
/// ```
/// use psmr_common::metrics::ThroughputMeter;
///
/// let meter = ThroughputMeter::start();
/// meter.add(1000);
/// let kcps = meter.kcps();
/// assert!(kcps >= 0.0);
/// ```
#[derive(Debug)]
pub struct ThroughputMeter {
    started: Instant,
    completed: AtomicU64,
}

impl ThroughputMeter {
    /// Starts a meter at the current instant.
    pub fn start() -> Self {
        Self {
            started: Instant::now(),
            completed: AtomicU64::new(0),
        }
    }

    /// Adds `n` completed operations.
    pub fn add(&self, n: u64) {
        self.completed.fetch_add(n, Ordering::Relaxed);
    }

    /// Total completed operations so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Elapsed wall-clock time since the meter started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.completed() as f64 / secs
        }
    }

    /// Throughput in Kilo commands per second — the paper's unit.
    pub fn kcps(&self) -> f64 {
        self.ops_per_sec() / 1000.0
    }
}

/// Hot-path pressure observed during one measured run: backpressure
/// stalls, held responses and high-water queue depths, snapshotted as
/// deltas of the global registry by the workload drivers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Delivery stalls on full subscriber queues during the run.
    pub delivery_backpressure_stalls: u64,
    /// Scheduler stalls on full execution-worker rings during the run.
    pub exec_backpressure_stalls: u64,
    /// Responses held back for durability during the run.
    pub responses_held: u64,
    /// Deepest subscriber delivery queue observed (batches).
    pub delivery_queue_max: u64,
    /// Largest open pipelined group-commit window observed (records
    /// appended but not yet fsynced).
    pub wal_inflight_max: u64,
}

impl PipelineStats {
    /// Reads the run's pressure out of a delta snapshot (see
    /// [`MetricsRegistry::snapshot_deltas`]): stall/hold counters arrive
    /// as deltas over the run's baseline, gauge maxes as the run's own
    /// peaks (the baseline cleared the high-water marks).
    pub fn from_snapshot(snap: &MetricsSnapshot) -> Self {
        Self {
            delivery_backpressure_stalls: snap.counter(counters::DELIVERY_BACKPRESSURE_STALLS),
            exec_backpressure_stalls: snap.counter(counters::EXEC_BACKPRESSURE_STALLS),
            responses_held: snap.counter(counters::RESPONSES_HELD),
            delivery_queue_max: snap.gauge_max(gauges::DELIVERY_QUEUE_DEPTH),
            wal_inflight_max: snap.gauge_max(gauges::WAL_INFLIGHT),
        }
    }
}

/// One technique's row in a figure: the numbers the paper plots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Technique label (`SMR`, `sP-SMR`, `P-SMR`, `no-rep`, `BDB`).
    pub technique: String,
    /// Throughput in Kilo commands per second.
    pub kcps: f64,
    /// Average latency in milliseconds.
    pub avg_latency_ms: f64,
    /// Median latency in milliseconds.
    pub p50_latency_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub p99_latency_ms: f64,
    /// Process CPU utilization in percent of one core (100% = one core).
    pub cpu_pct: f64,
    /// Latency CDF points `(ms, fraction)`.
    pub cdf: Vec<(f64, f64)>,
    /// Backpressure/holdback pressure observed during the run.
    pub pipeline: PipelineStats,
}

impl RunSummary {
    /// Builds a summary from a histogram and meter.
    pub fn from_parts(
        technique: impl Into<String>,
        hist: &Histogram,
        meter: &ThroughputMeter,
        cpu_pct: f64,
    ) -> Self {
        Self {
            technique: technique.into(),
            kcps: meter.kcps(),
            avg_latency_ms: hist.mean().as_secs_f64() * 1e3,
            p50_latency_ms: hist.percentile(50.0).as_secs_f64() * 1e3,
            p99_latency_ms: hist.percentile(99.0).as_secs_f64() * 1e3,
            cpu_pct,
            cdf: hist
                .cdf()
                .into_iter()
                .map(|(d, f)| (d.as_secs_f64() * 1e3, f))
                .collect(),
            pipeline: PipelineStats::default(),
        }
    }
}

/// A shared series of `(x, y)` points with labels, for the line plots
/// (Figures 5–7). Thread-safe so multiple experiment runs can append.
#[derive(Debug, Default)]
pub struct Series {
    points: Mutex<Vec<(f64, f64)>>,
}

impl Series {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a point.
    pub fn push(&self, x: f64, y: f64) {
        self.points.lock().push((x, y));
    }

    /// Returns the collected points sorted by `x`.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let mut pts = self.points.lock().clone();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite x values"));
        pts
    }
}

/// A monotonically increasing event counter (wait-free `fetch_add`).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depth, in-flight records) with a
/// high-water mark. Recording is wait-free, so hot-path components can
/// report depths without coordinating.
#[derive(Debug, Default)]
pub struct Gauge {
    current: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    /// Creates a zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the current level, updating the high-water mark.
    pub fn set(&self, level: u64) {
        self.current.store(level, Ordering::Relaxed);
        self.max.fetch_max(level, Ordering::Relaxed);
    }

    /// The most recently recorded level.
    pub fn get(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// Highest level ever recorded (since the last
    /// [`Gauge::reset_max`]).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Clears the high-water mark (the current level stays). Measurement
    /// harnesses call this at the start of a run so [`Gauge::max`]
    /// reports the run's own peak, not the process's.
    pub fn reset_max(&self) {
        self.max
            .store(self.current.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Well-known counter names (see [`MetricsRegistry`]).
pub mod counters {
    /// Requests silently discarded by a sink whose server side is gone
    /// (`ChannelSink`-style drops) or by a shut-down multicast group.
    pub const REQUESTS_DROPPED: &str = "requests_dropped";
    /// Requests a client proxy re-submitted after suspecting loss.
    pub const REQUESTS_RETRANSMITTED: &str = "requests_retransmitted";
    /// Coordinated checkpoints installed.
    pub const CHECKPOINTS_TAKEN: &str = "checkpoints_taken";
    /// Replicas restarted from a `(checkpoint, log suffix)` pair.
    pub const REPLICA_RESTARTS: &str = "replica_restarts";
    /// State-transfer fetch requests a serving peer answered with an
    /// offer (chunks follow).
    pub const TRANSFERS_SERVED: &str = "transfers_served";
    /// State transfers a fetching replica completed with a verified
    /// digest.
    pub const TRANSFERS_COMPLETED: &str = "transfers_completed";
    /// Snapshot chunks sent by serving peers.
    pub const TRANSFER_CHUNKS_SENT: &str = "transfer_chunks_sent";
    /// Times a fetching replica gave up on a peer (timeout, digest
    /// mismatch, mid-transfer crash) and moved to the next one.
    pub const TRANSFER_FALLBACKS: &str = "transfer_fallbacks";
    /// Checkpoints persisted to a replica's durable store.
    pub const SNAPSHOTS_PERSISTED: &str = "snapshots_persisted";
    /// Checkpoints loaded back from a durable store at recovery.
    pub const SNAPSHOTS_LOADED: &str = "snapshots_loaded";
    /// Durable snapshot files rejected at load (bad magic, truncation,
    /// crc mismatch) — corrupt files are skipped, not fatal.
    pub const SNAPSHOT_LOAD_FAILURES: &str = "snapshot_load_failures";
    /// Decided batches appended to a write-ahead log.
    pub const WAL_APPENDS: &str = "wal_appends";
    /// `fsync` calls the write-ahead logs issued (one per group-commit
    /// window, so `wal_appends / wal_fsyncs` approximates the achieved
    /// commit batch size).
    pub const WAL_FSYNCS: &str = "wal_fsyncs";
    /// WAL appends that failed with an I/O error (the ordered stream
    /// keeps running; durability of the failed record is lost).
    pub const WAL_APPEND_FAILURES: &str = "wal_append_failures";
    /// Pipelined group-commit `fsync`s that failed with an I/O error:
    /// the appends landed, the covering sync did not, and the group's
    /// durability watermark is abandoned (everything held releases).
    pub const WAL_SYNC_FAILURES: &str = "wal_sync_failures";
    /// Records recovered by WAL replay (cold start or reopening a log).
    pub const WAL_REPLAY_RECORDS: &str = "wal_replay_records";
    /// Torn tails dropped by WAL replay: a truncated or corrupt final
    /// record whose prefix still replays cleanly.
    pub const WAL_TORN_TAILS: &str = "wal_torn_tails";
    /// WAL segment files created (the first segment plus every rotation).
    pub const WAL_SEGMENTS_CREATED: &str = "wal_segments_created";
    /// WAL segment files reclaimed by trim-below-unlink.
    pub const WAL_SEGMENTS_TRIMMED: &str = "wal_segments_trimmed";
    /// Whole-deployment cold starts completed (every replica restarted
    /// from disk with no live peer).
    pub const COLD_STARTS: &str = "cold_starts";
    /// Times a group's delivery blocked on a full subscriber queue (a
    /// slow worker throttling ordering — the bounded-ring backpressure
    /// working as designed).
    pub const DELIVERY_BACKPRESSURE_STALLS: &str = "delivery_backpressure_stalls";
    /// Times a scheduler blocked on a full execution-worker ring.
    pub const EXEC_BACKPRESSURE_STALLS: &str = "exec_backpressure_stalls";
    /// Client responses held back because their batch's covering `fsync`
    /// had not yet landed (pipelined group commit only).
    pub const RESPONSES_HELD: &str = "responses_held";
    /// Held-back responses released once the durability watermark caught
    /// up.
    pub const RESPONSES_RELEASED: &str = "responses_released";
    /// Commands executed by replica workers. Workers record through
    /// per-worker labeled views (`commands_executed{replica=R,worker=W}`)
    /// that roll up here.
    pub const COMMANDS_EXECUTED: &str = "commands_executed";
    /// TCP peer links re-established after a drop (successful re-dials
    /// past the first connection; the initial connect does not count).
    pub const NET_RECONNECTS: &str = "net_reconnects";
    /// Frames written again after a reconnect replayed the link's
    /// bounded resend buffer.
    pub const NET_FRAMES_RESENT: &str = "net_frames_resent";
    /// Inbound frames discarded as duplicates (sequence number at or
    /// below the last one seen from that peer — resend-buffer replay).
    pub const NET_FRAMES_DUP_DROPPED: &str = "net_frames_dup_dropped";
    /// Frames evicted unsent from a full per-peer resend buffer (the
    /// transport is best-effort, like the simulated substrate).
    pub const NET_FRAMES_DROPPED: &str = "net_frames_dropped";
    /// Frames successfully written to a TCP peer link.
    pub const NET_FRAMES_SENT: &str = "net_frames_sent";
    /// TCP peer links established, counting the first connection *and*
    /// every re-dial (unlike `net_reconnects`, which counts only the
    /// latter) — a freshly restarted process shows its links coming up
    /// here.
    pub const NET_CONNECTS: &str = "net_connects";
    /// Payload bytes written to TCP peer links (frame bodies, not
    /// counting the envelope header or replayed duplicates).
    pub const NET_BYTES_SENT: &str = "net_bytes_sent";
    /// Data frames accepted from TCP peer links (after duplicate
    /// suppression).
    pub const NET_FRAMES_RECEIVED: &str = "net_frames_received";
    /// Payload bytes accepted from TCP peer links.
    pub const NET_BYTES_RECEIVED: &str = "net_bytes_received";
    /// Backoff sleeps a dialer served after a failed dial or handshake.
    pub const NET_BACKOFF_SLEEPS: &str = "net_backoff_sleeps";
    /// Inbound connections torn down because the frame stream poisoned
    /// (crc mismatch, oversized frame) or a payload violated the mesh
    /// protocol — the peer's dialer reconnects and replays.
    pub const NET_DECODE_POISONED: &str = "net_decode_poisoned";
    /// Outbound frames the chaos policy swallowed (drop probability) —
    /// per peer (`chaos_frames_dropped{peer=P}`), like every `chaos_*`
    /// counter below.
    pub const CHAOS_FRAMES_DROPPED: &str = "chaos_frames_dropped";
    /// Outbound frames the chaos policy held back by a fixed+jittered
    /// delay before writing.
    pub const CHAOS_FRAMES_DELAYED: &str = "chaos_frames_delayed";
    /// Outbound frames the chaos policy wrote twice (the receiver's dup
    /// filter must absorb the copy).
    pub const CHAOS_FRAMES_DUPLICATED: &str = "chaos_frames_duplicated";
    /// Outbound frames the chaos policy bit-flipped before writing (the
    /// receiver's decoder poisons and the connection is torn down).
    pub const CHAOS_FRAMES_CORRUPTED: &str = "chaos_frames_corrupted";
    /// Frames refused by a chaos partition: outbound writes withheld
    /// (`partition=out`) or inbound data frames discarded before
    /// dispatch (`partition=in`).
    pub const CHAOS_FRAMES_PARTITIONED: &str = "chaos_frames_partitioned";
    /// Sleeps the chaos bandwidth throttle inserted ahead of writes.
    pub const CHAOS_THROTTLE_SLEEPS: &str = "chaos_throttle_sleeps";
    /// Times a self-healing wire client re-established its node
    /// connection after a socket error or response silence.
    pub const CLIENT_RECONNECTS: &str = "client_reconnects";
    /// Times a self-healing wire client rotated to a different
    /// configured node address while reconnecting.
    pub const CLIENT_FAILOVERS: &str = "client_failovers";
    /// Ordered command copies a node executor suppressed because the
    /// `(client, request)` id had already executed — the retransmission
    /// path answering from the cached response instead of re-applying.
    pub const REQUESTS_DEDUPED: &str = "requests_deduped";
    /// Reads a node answered from its local store without ordering,
    /// tagged with their staleness (degraded-mode opt-in service).
    pub const STALE_READS_SERVED: &str = "stale_reads_served";
}

/// Well-known histogram names (see [`MetricsRegistry::histogram`]).
pub mod histograms {
    /// Observed latency of WAL commit `fsync`s. Recorded per group
    /// (`wal_fsync_ns{group=G}`) with a global rollup — the input a
    /// future adaptive `wal_sync_pace` controller needs.
    pub const WAL_FSYNC_NS: &str = "wal_fsync_ns";
    /// HELLO → ack round-trip of the mesh handshake, recorded per peer
    /// (`net_handshake_ns{peer=P}`) by the dialing side.
    pub const NET_HANDSHAKE_NS: &str = "net_handshake_ns";
}

/// Well-known gauge names (see [`MetricsRegistry::gauge`]).
pub mod gauges {
    /// Depth of the deepest subscriber delivery queue observed at send
    /// time (batches waiting for a worker).
    pub const DELIVERY_QUEUE_DEPTH: &str = "delivery_queue_depth";
    /// Records appended to a pipelined WAL but not yet covered by an
    /// `fsync` (the open group-commit window of the sync thread).
    pub const WAL_INFLIGHT: &str = "wal_inflight";
}

/// A point-in-time (or delta, see [`MetricsRegistry::snapshot_deltas`])
/// view of a registry: counters *and* gauges, both sorted by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, count)` per counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, current, max)` per gauge.
    pub gauges: Vec<(String, u64, u64)>,
}

impl MetricsSnapshot {
    /// Value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// High-water mark of gauge `name` (0 if absent).
    pub fn gauge_max(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _, _)| n == name)
            .map_or(0, |(_, _, m)| *m)
    }
}

/// Counter values at the start of a measured run, captured by
/// [`MetricsRegistry::baseline`] so [`MetricsRegistry::snapshot_deltas`]
/// can report only what the run itself did.
#[derive(Debug, Clone, Default)]
pub struct MetricsBaseline {
    counters: HashMap<String, u64>,
}

/// A process-wide registry of named [`Counter`]s, [`Gauge`]s and
/// [`Histogram`]s.
///
/// Components that would otherwise fail *silently* (request sinks whose
/// server has gone away, retransmitting client proxies, the recovery
/// machinery) record events here so tests and operators can observe
/// them. Instruments are created on first use and never removed.
///
/// Beyond the flat global names, [`MetricsRegistry::scoped`] opens a
/// **labeled view** (`wal_fsyncs{group=3}`, `commands_executed{worker=1}`)
/// whose instruments write through to the plain global name, so per-group
/// and per-worker detail always rolls up to the familiar totals.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<HashMap<String, Arc<Counter>>>,
    gauges: Mutex<HashMap<String, Arc<Gauge>>>,
    histograms: Mutex<HashMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (creating if needed) the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut counters = self.counters.lock();
        match counters.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::new());
                counters.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// Returns (creating if needed) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut gauges = self.gauges.lock();
        match gauges.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::new());
                gauges.insert(name.to_string(), Arc::clone(&g));
                g
            }
        }
    }

    /// Returns (creating if needed) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock();
        match histograms.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::new());
                histograms.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// Opens a labeled view of this registry: instruments resolved
    /// through the returned scope record into both `name{key=value}` and
    /// the plain `name` rollup. Chain [`MetricsScope::and`] for compound
    /// labels. Resolve scoped instruments **once** (at spawn) — the
    /// label formatting happens here, not on the hot path.
    pub fn scoped(&self, key: &str, value: impl fmt::Display) -> MetricsScope<'_> {
        MetricsScope {
            registry: self,
            label: format!("{key}={value}"),
        }
    }

    /// Convenience: current value of `name` (0 if never touched).
    pub fn value(&self, name: &str) -> u64 {
        self.counter(name).get()
    }

    /// Convenience: high-water mark of gauge `name` (0 if never set).
    pub fn gauge_max(&self, name: &str) -> u64 {
        self.gauge(name).max()
    }

    /// Every registered histogram as `(name, histogram)`, sorted by name.
    pub fn histograms(&self) -> Vec<(String, Arc<Histogram>)> {
        let mut out: Vec<(String, Arc<Histogram>)> = self
            .histograms
            .lock()
            .iter()
            .map(|(name, h)| (name.clone(), Arc::clone(h)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Snapshot of every counter and gauge, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .lock()
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, u64, u64)> = self
            .gauges
            .lock()
            .iter()
            .map(|(name, g)| (name.clone(), g.get(), g.max()))
            .collect();
        gauges.sort();
        MetricsSnapshot { counters, gauges }
    }

    /// Marks the start of a measured run: records every counter's
    /// current value and clears every gauge's high-water mark, so a
    /// later [`MetricsRegistry::snapshot_deltas`] reports only the run's
    /// own events and peaks.
    pub fn baseline(&self) -> MetricsBaseline {
        let counters = self
            .counters
            .lock()
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        for gauge in self.gauges.lock().values() {
            gauge.reset_max();
        }
        MetricsBaseline { counters }
    }

    /// Snapshot relative to `base`: counter values minus their baseline
    /// (counters born after the baseline report their full value),
    /// gauges as `(name, current, max-since-baseline)`.
    pub fn snapshot_deltas(&self, base: &MetricsBaseline) -> MetricsSnapshot {
        let mut snap = self.snapshot();
        for (name, value) in &mut snap.counters {
            *value -= base.counters.get(name.as_str()).copied().unwrap_or(0);
        }
        snap
    }
}

/// A labeled view of a [`MetricsRegistry`] (see
/// [`MetricsRegistry::scoped`]).
#[derive(Debug, Clone)]
pub struct MetricsScope<'a> {
    registry: &'a MetricsRegistry,
    label: String,
}

impl MetricsScope<'_> {
    /// Extends the label with another `key=value` dimension:
    /// `registry.scoped("replica", 0).and("worker", 3)` labels
    /// instruments `{replica=0,worker=3}`.
    pub fn and(mut self, key: &str, value: impl fmt::Display) -> Self {
        use fmt::Write as _;
        let _ = write!(self.label, ",{key}={value}");
        self
    }

    /// The scope's rendered label, e.g. `group=3` or `replica=0,worker=3`.
    pub fn label(&self) -> &str {
        &self.label
    }

    fn labeled(&self, name: &str) -> String {
        format!("{name}{{{}}}", self.label)
    }

    /// Write-through counter pair: `name{label}` plus the `name` rollup.
    pub fn counter(&self, name: &str) -> ScopedCounter {
        ScopedCounter {
            labeled: self.registry.counter(&self.labeled(name)),
            rollup: self.registry.counter(name),
        }
    }

    /// Write-through gauge pair: `name{label}` plus the `name` rollup.
    pub fn gauge(&self, name: &str) -> ScopedGauge {
        ScopedGauge {
            labeled: self.registry.gauge(&self.labeled(name)),
            rollup: self.registry.gauge(name),
        }
    }

    /// Write-through histogram pair: `name{label}` plus the `name`
    /// rollup.
    pub fn histogram(&self, name: &str) -> ScopedHistogram {
        ScopedHistogram {
            labeled: self.registry.histogram(&self.labeled(name)),
            rollup: self.registry.histogram(name),
        }
    }
}

/// A counter recording into a labeled name and its global rollup.
#[derive(Debug, Clone)]
pub struct ScopedCounter {
    labeled: Arc<Counter>,
    rollup: Arc<Counter>,
}

impl ScopedCounter {
    /// Adds one event to the labeled counter and the rollup.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` events to the labeled counter and the rollup.
    pub fn add(&self, n: u64) {
        self.labeled.add(n);
        self.rollup.add(n);
    }

    /// The labeled (per-scope) count.
    pub fn get(&self) -> u64 {
        self.labeled.get()
    }
}

/// A gauge recording into a labeled name and its global rollup.
#[derive(Debug, Clone)]
pub struct ScopedGauge {
    labeled: Arc<Gauge>,
    rollup: Arc<Gauge>,
}

impl ScopedGauge {
    /// Records `level` on the labeled gauge and the rollup.
    pub fn set(&self, level: u64) {
        self.labeled.set(level);
        self.rollup.set(level);
    }

    /// The labeled (per-scope) current level.
    pub fn get(&self) -> u64 {
        self.labeled.get()
    }

    /// The labeled (per-scope) high-water mark.
    pub fn max(&self) -> u64 {
        self.labeled.max()
    }
}

/// A histogram recording into a labeled name and its global rollup.
#[derive(Debug, Clone)]
pub struct ScopedHistogram {
    labeled: Arc<Histogram>,
    rollup: Arc<Histogram>,
}

impl ScopedHistogram {
    /// Records one sample into the labeled histogram and the rollup.
    pub fn record(&self, latency: Duration) {
        self.labeled.record(latency);
        self.rollup.record(latency);
    }

    /// The labeled (per-scope) sample count.
    pub fn count(&self) -> u64 {
        self.labeled.count()
    }

    /// The labeled (per-scope) histogram.
    pub fn labeled(&self) -> &Histogram {
        &self.labeled
    }
}

/// The process-wide registry instrumented components report into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.percentile(50.0), Duration::ZERO);
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn percentiles_bracket_recorded_values() {
        let h = Histogram::new();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        // Bucket midpoints bound the error at half a sub-bucket (~1.6%)
        // either side of the true percentile, not a full bucket high.
        let p50 = h.percentile(50.0);
        assert!(p50 >= Duration::from_micros(485), "p50 = {p50:?}");
        assert!(p50 <= Duration::from_micros(520), "p50 = {p50:?}");
        let p99 = h.percentile(99.0);
        assert!(p99 >= Duration::from_micros(975), "p99 = {p99:?}");
        assert!(p99 <= Duration::from_micros(1010), "p99 = {p99:?}");
    }

    #[test]
    fn mean_and_max_are_exact() {
        let h = Histogram::new();
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(300));
        assert_eq!(h.mean(), Duration::from_micros(200));
        assert_eq!(h.max(), Duration::from_micros(300));
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let h = Histogram::new();
        for us in [10u64, 20, 20, 40, 80, 160] {
            h.record(Duration::from_micros(us));
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        let mut prev = 0.0;
        for &(_, frac) in &cdf {
            assert!(frac >= prev);
            prev = frac;
        }
        assert!((cdf.last().expect("non-empty").1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(20));
        b.record(Duration::from_micros(30));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), Duration::from_micros(30));
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn out_of_range_percentile_panics() {
        Histogram::new().percentile(101.0);
    }

    #[test]
    fn meter_counts_and_rates() {
        let m = ThroughputMeter::start();
        m.add(500);
        m.add(500);
        assert_eq!(m.completed(), 1000);
        std::thread::sleep(Duration::from_millis(5));
        assert!(m.ops_per_sec() > 0.0);
        assert!(m.kcps() <= m.ops_per_sec());
    }

    #[test]
    fn summary_converts_units() {
        let h = Histogram::new();
        h.record(Duration::from_millis(2));
        let m = ThroughputMeter::start();
        m.add(10);
        let s = RunSummary::from_parts("SMR", &h, &m, 99.0);
        assert_eq!(s.technique, "SMR");
        assert!(s.avg_latency_ms >= 2.0);
        assert_eq!(s.cpu_pct, 99.0);
        assert_eq!(s.cdf.len(), 1);
    }

    #[test]
    fn counters_register_and_accumulate() {
        let registry = MetricsRegistry::new();
        assert_eq!(registry.value("never_touched"), 0);
        let dropped = registry.counter(counters::REQUESTS_DROPPED);
        dropped.inc();
        dropped.add(2);
        assert_eq!(registry.value(counters::REQUESTS_DROPPED), 3);
        // Same name resolves to the same counter.
        registry.counter(counters::REQUESTS_DROPPED).inc();
        assert_eq!(dropped.get(), 4);
        let snap = registry.snapshot();
        assert!(snap
            .counters
            .contains(&(counters::REQUESTS_DROPPED.to_string(), 4)));
        assert_eq!(snap.counter(counters::REQUESTS_DROPPED), 4);
    }

    #[test]
    fn gauges_track_level_and_high_water_mark() {
        let registry = MetricsRegistry::new();
        let depth = registry.gauge(gauges::DELIVERY_QUEUE_DEPTH);
        assert_eq!(depth.get(), 0);
        depth.set(7);
        depth.set(3);
        assert_eq!(depth.get(), 3, "gauge reports the latest level");
        assert_eq!(depth.max(), 7, "high-water mark sticks");
        assert_eq!(registry.gauge_max(gauges::DELIVERY_QUEUE_DEPTH), 7);
        // Same name resolves to the same gauge.
        registry.gauge(gauges::DELIVERY_QUEUE_DEPTH).set(9);
        assert_eq!(depth.max(), 9);
    }

    #[test]
    fn summary_reports_percentiles() {
        let h = Histogram::new();
        for us in 1..=100u64 {
            h.record(Duration::from_micros(us * 10));
        }
        let m = ThroughputMeter::start();
        m.add(100);
        let s = RunSummary::from_parts("P-SMR", &h, &m, 0.0);
        assert!(s.p50_latency_ms > 0.0);
        assert!(
            s.p50_latency_ms <= s.p99_latency_ms,
            "p50 {} > p99 {}",
            s.p50_latency_ms,
            s.p99_latency_ms
        );
        assert_eq!(s.pipeline, PipelineStats::default());
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("metrics_test_global_probe");
        let before = c.get();
        global().counter("metrics_test_global_probe").inc();
        assert_eq!(c.get(), before + 1);
    }

    #[test]
    fn series_sorts_points() {
        let s = Series::new();
        s.push(4.0, 1.0);
        s.push(1.0, 2.0);
        s.push(2.0, 3.0);
        let pts = s.points();
        assert_eq!(pts, vec![(1.0, 2.0), (2.0, 3.0), (4.0, 1.0)]);
    }

    #[test]
    fn bucket_round_trip_error_is_bounded() {
        for ns in [1u64, 5, 100, 1_000, 12_345, 1_000_000, 123_456_789] {
            let idx = Histogram::bucket_index(ns);
            let rep = Histogram::bucket_value(idx);
            let err = (rep as f64 - ns as f64).abs() / ns as f64;
            assert!(err < 0.10, "ns={ns} rep={rep} err={err}");
        }
    }

    #[test]
    fn clear_empties_a_histogram() {
        let h = Histogram::new();
        h.record(Duration::from_micros(10));
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
        assert!(h.cdf().is_empty());
        h.record(Duration::from_micros(20));
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn snapshot_includes_gauge_rows() {
        let registry = MetricsRegistry::new();
        let depth = registry.gauge(gauges::DELIVERY_QUEUE_DEPTH);
        depth.set(9);
        depth.set(2);
        let snap = registry.snapshot();
        assert!(snap
            .gauges
            .contains(&(gauges::DELIVERY_QUEUE_DEPTH.to_string(), 2, 9)));
        assert_eq!(snap.gauge_max(gauges::DELIVERY_QUEUE_DEPTH), 9);
        assert_eq!(snap.gauge_max("never_set"), 0);
    }

    #[test]
    fn baseline_and_deltas_isolate_a_run() {
        let registry = MetricsRegistry::new();
        let stalls = registry.counter(counters::DELIVERY_BACKPRESSURE_STALLS);
        let depth = registry.gauge(gauges::DELIVERY_QUEUE_DEPTH);
        stalls.add(10);
        depth.set(50);
        depth.set(0);

        let base = registry.baseline();
        stalls.add(3);
        depth.set(7);
        // A counter born after the baseline reports its full value.
        registry.counter(counters::RESPONSES_HELD).add(2);

        let snap = registry.snapshot_deltas(&base);
        assert_eq!(snap.counter(counters::DELIVERY_BACKPRESSURE_STALLS), 3);
        assert_eq!(snap.counter(counters::RESPONSES_HELD), 2);
        assert_eq!(
            snap.gauge_max(gauges::DELIVERY_QUEUE_DEPTH),
            7,
            "baseline cleared the pre-run high-water mark of 50"
        );
    }

    #[test]
    fn pipeline_stats_read_from_a_delta_snapshot() {
        let registry = MetricsRegistry::new();
        let base = registry.baseline();
        registry
            .counter(counters::DELIVERY_BACKPRESSURE_STALLS)
            .add(4);
        registry.counter(counters::RESPONSES_HELD).add(6);
        registry.gauge(gauges::WAL_INFLIGHT).set(11);
        let stats = PipelineStats::from_snapshot(&registry.snapshot_deltas(&base));
        assert_eq!(stats.delivery_backpressure_stalls, 4);
        assert_eq!(stats.responses_held, 6);
        assert_eq!(stats.wal_inflight_max, 11);
        assert_eq!(stats.exec_backpressure_stalls, 0);
    }

    #[test]
    fn scoped_instruments_write_through_to_the_rollup() {
        let registry = MetricsRegistry::new();
        let scope = registry.scoped("group", 3);
        assert_eq!(scope.label(), "group=3");

        let scoped = scope.counter(counters::WAL_FSYNCS);
        scoped.add(5);
        assert_eq!(scoped.get(), 5);
        assert_eq!(registry.value("wal_fsyncs{group=3}"), 5);
        assert_eq!(registry.value(counters::WAL_FSYNCS), 5, "rollup sees it");
        // A sibling scope shares the rollup but not the labeled counter.
        registry
            .scoped("group", 4)
            .counter(counters::WAL_FSYNCS)
            .inc();
        assert_eq!(registry.value(counters::WAL_FSYNCS), 6);
        assert_eq!(scoped.get(), 5);

        let gauge = scope.gauge(gauges::WAL_INFLIGHT);
        gauge.set(8);
        assert_eq!(gauge.get(), 8);
        assert_eq!(gauge.max(), 8);
        assert_eq!(registry.gauge_max("wal_inflight{group=3}"), 8);
        assert_eq!(registry.gauge_max(gauges::WAL_INFLIGHT), 8);

        let hist = scope.histogram(histograms::WAL_FSYNC_NS);
        hist.record(Duration::from_micros(120));
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.labeled().count(), 1);
        assert_eq!(registry.histogram(histograms::WAL_FSYNC_NS).count(), 1);
        let names: Vec<String> = registry.histograms().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["wal_fsync_ns", "wal_fsync_ns{group=3}"]);
    }

    #[test]
    fn compound_labels_chain() {
        let registry = MetricsRegistry::new();
        let scope = registry.scoped("replica", 0).and("worker", 3);
        assert_eq!(scope.label(), "replica=0,worker=3");
        scope.counter(counters::COMMANDS_EXECUTED).inc();
        assert_eq!(registry.value("commands_executed{replica=0,worker=3}"), 1);
        assert_eq!(registry.value(counters::COMMANDS_EXECUTED), 1);
    }
}
