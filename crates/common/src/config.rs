//! System configuration.
//!
//! Mirrors the deployment knobs of the paper's prototype (§VI): the
//! multiprogramming level (MPL, number of worker threads per replica), the
//! number of replicas (the paper uses `n = f + 1 = 2`), the number of Paxos
//! acceptors per instance (3, tolerating one acceptor failure), and the
//! 8 KB batch cap of the multicast library.

use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Duration;

/// Configuration of a replicated deployment.
///
/// Construct with [`SystemConfig::new`] and refine with the builder-style
/// setters; all setters return `&mut Self` so both one-liner and staged
/// configuration read naturally ([C-BUILDER]).
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html#c-builder
///
/// # Example
///
/// ```
/// use psmr_common::SystemConfig;
///
/// let mut cfg = SystemConfig::new(8);
/// cfg.replicas(2).acceptors(3);
/// assert_eq!(cfg.mpl, 8);
/// assert_eq!(cfg.group_count(), 9); // g_1..g_8 plus g_all
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Multiprogramming level: number of worker threads per replica, and
    /// therefore the number of per-worker multicast groups `g_1..g_k`.
    pub mpl: usize,
    /// Number of server replicas. The paper deploys `n = f + 1 = 2`.
    pub n_replicas: usize,
    /// Acceptors per Paxos instance (3 in the paper; tolerates one crash).
    pub n_acceptors: usize,
    /// Maximum marshalled size of a consensus batch (8 KB in the paper).
    pub batch_bytes: usize,
    /// How long a coordinator waits for more traffic before closing a
    /// non-full batch.
    pub batch_delay: Duration,
    /// Round-clock period of merged (P-SMR) streams: every group decides
    /// exactly one round per tick — a *skip* when idle — so deterministic
    /// merge advances in lockstep (Multi-Ring Paxos style). Lower values
    /// reduce command latency but cost one consensus instance per group per
    /// tick even when idle.
    pub skip_interval: Duration,
    /// Per-client window of outstanding commands (50 in the paper, §VI-B).
    pub client_window: usize,
    /// Decided batches each group retains for replica catch-up, beyond
    /// what checkpoints have made reclaimable. Checkpoints trim the logs
    /// down to their cut; this cap additionally bounds memory when no
    /// checkpoints are taken. `usize::MAX` disables the cap.
    pub log_retention: usize,
    /// When set, recoverable engines multicast a `CHECKPOINT` control
    /// command on the serialized group at this interval, keeping the
    /// ordered logs trimmed and recovery points fresh.
    pub checkpoint_interval: Option<Duration>,
    /// When set, every replica of a recoverable deployment persists its
    /// checkpoints to `<snapshot_dir>/r<replica>` (atomic rename,
    /// crc-checked load), and a restarting replica recovers from its own
    /// disk before falling back to peer state transfer. `None` keeps
    /// checkpoints in memory only.
    pub snapshot_dir: Option<PathBuf>,
    /// Chunk size of peer-to-peer state transfer: a served snapshot is
    /// streamed as `ceil(len / transfer_chunk_bytes)` messages so a peer
    /// crash mid-transfer is detectable per chunk rather than per
    /// snapshot.
    pub transfer_chunk_bytes: usize,
    /// How long a fetching replica waits for each state-transfer message
    /// (the offer and every chunk) before declaring the serving peer dead
    /// and falling back to the next one.
    pub transfer_timeout: Duration,
}

impl SystemConfig {
    /// Creates a configuration with the paper's defaults and the given
    /// multiprogramming level.
    ///
    /// # Panics
    ///
    /// Panics if `mpl` is zero: a replica needs at least one worker.
    pub fn new(mpl: usize) -> Self {
        assert!(mpl > 0, "multiprogramming level must be at least 1");
        Self {
            mpl,
            n_replicas: 2,
            n_acceptors: 3,
            batch_bytes: 8 * 1024,
            batch_delay: Duration::from_micros(50),
            skip_interval: Duration::from_millis(1),
            client_window: 50,
            log_retention: 4096,
            checkpoint_interval: None,
            snapshot_dir: None,
            transfer_chunk_bytes: 4096,
            transfer_timeout: Duration::from_millis(250),
        }
    }

    /// Sets the number of replicas.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn replicas(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "need at least one replica");
        self.n_replicas = n;
        self
    }

    /// Sets the number of acceptors per Paxos instance.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn acceptors(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "need at least one acceptor");
        self.n_acceptors = n;
        self
    }

    /// Sets the batch size cap in bytes.
    pub fn batch_bytes(&mut self, bytes: usize) -> &mut Self {
        self.batch_bytes = bytes.max(1);
        self
    }

    /// Sets the batch linger delay.
    pub fn batch_delay(&mut self, delay: Duration) -> &mut Self {
        self.batch_delay = delay;
        self
    }

    /// Sets the skip-round interval for idle groups.
    pub fn skip_interval(&mut self, interval: Duration) -> &mut Self {
        self.skip_interval = interval;
        self
    }

    /// Sets the per-client outstanding-command window.
    pub fn client_window(&mut self, window: usize) -> &mut Self {
        self.client_window = window.max(1);
        self
    }

    /// Sets the per-group retained-log cap (in decided batches).
    pub fn log_retention(&mut self, batches: usize) -> &mut Self {
        self.log_retention = batches.max(1);
        self
    }

    /// Sets (or clears) the automatic checkpoint interval.
    pub fn checkpoint_interval(&mut self, interval: Option<Duration>) -> &mut Self {
        self.checkpoint_interval = interval;
        self
    }

    /// Sets (or clears) the directory durable snapshots are persisted
    /// under. Each replica uses the `r<replica>` subdirectory.
    pub fn snapshot_dir(&mut self, dir: Option<PathBuf>) -> &mut Self {
        self.snapshot_dir = dir;
        self
    }

    /// Sets the state-transfer chunk size in bytes (floored at 1).
    pub fn transfer_chunk_bytes(&mut self, bytes: usize) -> &mut Self {
        self.transfer_chunk_bytes = bytes.max(1);
        self
    }

    /// Sets the per-message state-transfer timeout.
    pub fn transfer_timeout(&mut self, timeout: Duration) -> &mut Self {
        self.transfer_timeout = timeout;
        self
    }

    /// Number of multicast groups the deployment uses: one per worker plus
    /// the shared `g_all` group every worker subscribes to (§VI-A).
    pub fn group_count(&self) -> usize {
        self.mpl + 1
    }

    /// The index of the shared group `g_all` to which every worker thread
    /// of every replica belongs.
    pub fn all_group(&self) -> crate::ids::GroupId {
        crate::ids::GroupId::new(self.mpl)
    }

    /// Acceptor crash failures each Paxos instance tolerates (majority
    /// quorums): `⌊(a - 1) / 2⌋`.
    pub fn acceptor_fault_tolerance(&self) -> usize {
        (self.n_acceptors - 1) / 2
    }
}

impl Default for SystemConfig {
    /// A single-worker configuration, equivalent to classical SMR.
    fn default() -> Self {
        Self::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let cfg = SystemConfig::new(8);
        assert_eq!(cfg.n_replicas, 2);
        assert_eq!(cfg.n_acceptors, 3);
        assert_eq!(cfg.batch_bytes, 8 * 1024);
        assert_eq!(cfg.client_window, 50);
    }

    #[test]
    #[should_panic(expected = "multiprogramming level")]
    fn zero_mpl_is_rejected() {
        let _ = SystemConfig::new(0);
    }

    #[test]
    fn group_count_includes_g_all() {
        let cfg = SystemConfig::new(4);
        assert_eq!(cfg.group_count(), 5);
        assert_eq!(cfg.all_group().as_raw(), 4);
    }

    #[test]
    fn builder_setters_chain() {
        let mut cfg = SystemConfig::new(2);
        cfg.replicas(3)
            .acceptors(5)
            .batch_bytes(1024)
            .client_window(10);
        assert_eq!(cfg.n_replicas, 3);
        assert_eq!(cfg.n_acceptors, 5);
        assert_eq!(cfg.acceptor_fault_tolerance(), 2);
        assert_eq!(cfg.batch_bytes, 1024);
        assert_eq!(cfg.client_window, 10);
    }

    #[test]
    fn three_acceptors_tolerate_one_failure() {
        assert_eq!(SystemConfig::new(1).acceptor_fault_tolerance(), 1);
    }

    #[test]
    fn default_is_sequential_smr_shape() {
        let cfg = SystemConfig::default();
        assert_eq!(cfg.mpl, 1);
        assert_eq!(cfg.group_count(), 2);
    }

    #[test]
    fn recovery_knobs_have_safe_defaults_and_chain() {
        let mut cfg = SystemConfig::new(2);
        assert_eq!(cfg.log_retention, 4096);
        assert_eq!(cfg.checkpoint_interval, None);
        cfg.log_retention(16)
            .checkpoint_interval(Some(Duration::from_millis(50)));
        assert_eq!(cfg.log_retention, 16);
        assert_eq!(cfg.checkpoint_interval, Some(Duration::from_millis(50)));
        cfg.log_retention(0);
        assert_eq!(cfg.log_retention, 1, "cap floors at one batch");
    }

    #[test]
    fn transfer_and_durability_knobs_have_safe_defaults_and_chain() {
        let mut cfg = SystemConfig::new(2);
        assert_eq!(cfg.snapshot_dir, None);
        assert_eq!(cfg.transfer_chunk_bytes, 4096);
        assert_eq!(cfg.transfer_timeout, Duration::from_millis(250));
        cfg.snapshot_dir(Some(PathBuf::from("/tmp/psmr")))
            .transfer_chunk_bytes(0)
            .transfer_timeout(Duration::from_millis(50));
        assert_eq!(cfg.snapshot_dir.as_deref(), Some("/tmp/psmr".as_ref()));
        assert_eq!(cfg.transfer_chunk_bytes, 1, "chunk size floors at 1");
        assert_eq!(cfg.transfer_timeout, Duration::from_millis(50));
    }

    #[test]
    fn serde_round_trip() {
        let cfg = SystemConfig::new(6);
        let json = serde_json_like(&cfg);
        assert!(json.contains("mpl"));
    }

    // serde_json is not an allowed dependency; a Debug-format smoke check is
    // enough to ensure the derives compile and fields are visible.
    fn serde_json_like(cfg: &SystemConfig) -> String {
        format!("{cfg:?}")
    }
}
