//! System configuration.
//!
//! Mirrors the deployment knobs of the paper's prototype (§VI): the
//! multiprogramming level (MPL, number of worker threads per replica), the
//! number of replicas (the paper uses `n = f + 1 = 2`), the number of Paxos
//! acceptors per instance (3, tolerating one acceptor failure), and the
//! 8 KB batch cap of the multicast library.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

/// A durability/recovery knob set to a value that cannot work.
///
/// Returned by [`SystemConfig::validate`]; deployments check their
/// configuration up front instead of clamping bad values silently or
/// panicking deep inside the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `transfer_chunk_bytes` is zero: a state transfer could never make
    /// progress (every chunk would carry no bytes).
    ZeroTransferChunk,
    /// `log_retention` is zero: no decided batch would ever be retained,
    /// so no replica could catch up past its own crash.
    ZeroRetention,
    /// `wal_batch` is zero: the group-commit window would never admit an
    /// append, wedging the ordered log.
    ZeroWalBatch,
    /// `wal_segment_bytes` is zero: every append would rotate into a
    /// fresh segment, degenerating the log into one file per record.
    ZeroWalSegment,
    /// `batch_bytes` is zero: no command would ever fit in a batch.
    ZeroBatchBytes,
    /// `client_window` is zero: clients could never have a request in
    /// flight.
    ZeroClientWindow,
    /// `delivery_queue` is zero: no decided batch could ever be handed to
    /// a subscriber, wedging delivery at the first round.
    ZeroDeliveryQueue,
    /// `exec_ring` is zero: no request could ever be enqueued to an
    /// execution worker, wedging the scheduler stage.
    ZeroExecRing,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroTransferChunk => {
                write!(f, "transfer_chunk_bytes must be at least 1")
            }
            ConfigError::ZeroRetention => write!(f, "log_retention must be at least 1 batch"),
            ConfigError::ZeroWalBatch => write!(f, "wal_batch must be at least 1 append"),
            ConfigError::ZeroWalSegment => {
                write!(f, "wal_segment_bytes must be at least 1")
            }
            ConfigError::ZeroBatchBytes => write!(f, "batch_bytes must be at least 1"),
            ConfigError::ZeroClientWindow => write!(f, "client_window must be at least 1"),
            ConfigError::ZeroDeliveryQueue => {
                write!(f, "delivery_queue must be at least 1 batch")
            }
            ConfigError::ZeroExecRing => write!(f, "exec_ring must be at least 1 request"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of a replicated deployment.
///
/// Construct with [`SystemConfig::new`] and refine with the builder-style
/// setters; all setters return `&mut Self` so both one-liner and staged
/// configuration read naturally ([C-BUILDER]).
///
/// [C-BUILDER]: https://rust-lang.github.io/api-guidelines/type-safety.html#c-builder
///
/// # Example
///
/// ```
/// use psmr_common::SystemConfig;
///
/// let mut cfg = SystemConfig::new(8);
/// cfg.replicas(2).acceptors(3);
/// assert_eq!(cfg.mpl, 8);
/// assert_eq!(cfg.group_count(), 9); // g_1..g_8 plus g_all
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Multiprogramming level: number of worker threads per replica, and
    /// therefore the number of per-worker multicast groups `g_1..g_k`.
    pub mpl: usize,
    /// Number of server replicas. The paper deploys `n = f + 1 = 2`.
    pub n_replicas: usize,
    /// Acceptors per Paxos instance (3 in the paper; tolerates one crash).
    pub n_acceptors: usize,
    /// Maximum marshalled size of a consensus batch (8 KB in the paper).
    pub batch_bytes: usize,
    /// How long a coordinator waits for more traffic before closing a
    /// non-full batch.
    pub batch_delay: Duration,
    /// Round-clock period of merged (P-SMR) streams: every group decides
    /// exactly one round per tick — a *skip* when idle — so deterministic
    /// merge advances in lockstep (Multi-Ring Paxos style). Lower values
    /// reduce command latency but cost one consensus instance per group per
    /// tick even when idle.
    pub skip_interval: Duration,
    /// Per-client window of outstanding commands (50 in the paper, §VI-B).
    pub client_window: usize,
    /// Decided batches each group retains for replica catch-up, beyond
    /// what checkpoints have made reclaimable. Checkpoints trim the logs
    /// down to their cut; this cap additionally bounds memory when no
    /// checkpoints are taken. `usize::MAX` disables the cap.
    pub log_retention: usize,
    /// When set, recoverable engines multicast a `CHECKPOINT` control
    /// command on the serialized group at this interval, keeping the
    /// ordered logs trimmed and recovery points fresh.
    pub checkpoint_interval: Option<Duration>,
    /// When set, every replica of a recoverable deployment persists its
    /// checkpoints to `<snapshot_dir>/r<replica>` (atomic rename,
    /// crc-checked load), and a restarting replica recovers from its own
    /// disk before falling back to peer state transfer. `None` keeps
    /// checkpoints in memory only.
    pub snapshot_dir: Option<PathBuf>,
    /// Chunk size of peer-to-peer state transfer: a served snapshot is
    /// streamed as `ceil(len / transfer_chunk_bytes)` messages so a peer
    /// crash mid-transfer is detectable per chunk rather than per
    /// snapshot.
    pub transfer_chunk_bytes: usize,
    /// How long a fetching replica waits for each state-transfer message
    /// (the offer and every chunk) before declaring the serving peer dead
    /// and falling back to the next one.
    pub transfer_timeout: Duration,
    /// When set, every multicast group appends its decided batches to a
    /// durable write-ahead log under `<wal_dir>/g<group>` — the ordered
    /// suffix a whole-deployment cold start replays after restoring the
    /// newest snapshots. `None` keeps the ordered logs in memory only
    /// (a deployment where every replica crashes is then unrecoverable).
    pub wal_dir: Option<PathBuf>,
    /// Group-commit window of the write-ahead log: one `fsync` is issued
    /// every `wal_batch` appended records, amortizing the sync cost over
    /// the batch. `1` syncs every append (safest, slowest). Ignored when
    /// `wal_pipeline` is on (the sync thread group-commits adaptively).
    pub wal_batch: usize,
    /// Size threshold at which the write-ahead log rotates to a fresh
    /// segment file. Trimming reclaims whole segments by unlink.
    pub wal_segment_bytes: usize,
    /// Pipelined group commit: decided batches are appended to the WAL
    /// and fanned out to subscribers **immediately**, while the covering
    /// `fsync` runs on one sync thread **shared by every group of the
    /// deployment** (each paced pass group-commits all logs with open
    /// command windows). Execution overlaps durability; client
    /// responses are held back until the per-group durability watermark
    /// covers the command's batch, so an executed-but-not-yet-durable
    /// command is never observable. Off by default (inline appends,
    /// `wal_batch`-windowed fsync). Only meaningful with `wal_dir` set.
    pub wal_pipeline: bool,
    /// Minimum interval between two fsync passes of the deployment's
    /// shared sync thread — the group-commit pacing (each pass syncs
    /// every group with an open command window, so per-pass fsync work
    /// scales with group count). Smaller values shrink the
    /// response-holdback latency; larger values amortize each fsync over
    /// more appends and spend less CPU on sync churn. Only meaningful
    /// with `wal_pipeline`.
    pub wal_sync_pace: Duration,
    /// Capacity, in decided batches, of each subscriber's delivery queue
    /// (the ring between a group's delivery and a replica worker). When a
    /// slow worker fills its ring the coordinator blocks, throttling
    /// ordering instead of growing memory without bound
    /// (`delivery_backpressure_stalls` counts those stalls).
    pub delivery_queue: usize,
    /// Capacity, in requests, of each execution worker's ring (the
    /// scheduler→worker queues of sP-SMR and no-rep). A full ring blocks
    /// the scheduler — delivery throttles instead of buffering unboundedly
    /// (`exec_backpressure_stalls` counts those stalls).
    pub exec_ring: usize,
    /// Command-lifecycle trace sampling: every N-th batch sequence per
    /// group is stamped through the pipeline stages (submitted → ordered
    /// → appended → delivered → executed → released) and aggregated into
    /// per-stage latency histograms. `0` disables tracing. The default
    /// (32) is cheap enough to leave on (see the bench's trace-overhead
    /// sanity check).
    pub trace_sample: u64,
}

impl SystemConfig {
    /// Creates a configuration with the paper's defaults and the given
    /// multiprogramming level.
    ///
    /// # Panics
    ///
    /// Panics if `mpl` is zero: a replica needs at least one worker.
    pub fn new(mpl: usize) -> Self {
        assert!(mpl > 0, "multiprogramming level must be at least 1");
        Self {
            mpl,
            n_replicas: 2,
            n_acceptors: 3,
            batch_bytes: 8 * 1024,
            batch_delay: Duration::from_micros(50),
            skip_interval: Duration::from_millis(1),
            client_window: 50,
            log_retention: 4096,
            checkpoint_interval: None,
            snapshot_dir: None,
            transfer_chunk_bytes: 4096,
            transfer_timeout: Duration::from_millis(250),
            wal_dir: None,
            wal_batch: 16,
            wal_segment_bytes: 4 * 1024 * 1024,
            wal_pipeline: false,
            wal_sync_pace: Duration::from_millis(1),
            delivery_queue: 1024,
            exec_ring: 4096,
            trace_sample: 32,
        }
    }

    /// Checks the durability/recovery knobs for values that cannot work,
    /// returning the first violation as a typed [`ConfigError`].
    ///
    /// Engines and the multicast substrate validate at spawn, so a
    /// zeroed knob fails fast at construction instead of being silently
    /// clamped or panicking deep inside the stack.
    ///
    /// # Errors
    ///
    /// See the [`ConfigError`] variants for each rejected knob.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.transfer_chunk_bytes == 0 {
            return Err(ConfigError::ZeroTransferChunk);
        }
        if self.log_retention == 0 {
            return Err(ConfigError::ZeroRetention);
        }
        if self.wal_batch == 0 {
            return Err(ConfigError::ZeroWalBatch);
        }
        if self.wal_segment_bytes == 0 {
            return Err(ConfigError::ZeroWalSegment);
        }
        if self.batch_bytes == 0 {
            return Err(ConfigError::ZeroBatchBytes);
        }
        if self.client_window == 0 {
            return Err(ConfigError::ZeroClientWindow);
        }
        if self.delivery_queue == 0 {
            return Err(ConfigError::ZeroDeliveryQueue);
        }
        if self.exec_ring == 0 {
            return Err(ConfigError::ZeroExecRing);
        }
        Ok(())
    }

    /// Sets the number of replicas.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn replicas(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "need at least one replica");
        self.n_replicas = n;
        self
    }

    /// Sets the number of acceptors per Paxos instance.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn acceptors(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "need at least one acceptor");
        self.n_acceptors = n;
        self
    }

    /// Sets the batch size cap in bytes (zero is rejected by
    /// [`SystemConfig::validate`]).
    pub fn batch_bytes(&mut self, bytes: usize) -> &mut Self {
        self.batch_bytes = bytes;
        self
    }

    /// Sets the batch linger delay.
    pub fn batch_delay(&mut self, delay: Duration) -> &mut Self {
        self.batch_delay = delay;
        self
    }

    /// Sets the skip-round interval for idle groups.
    pub fn skip_interval(&mut self, interval: Duration) -> &mut Self {
        self.skip_interval = interval;
        self
    }

    /// Sets the per-client outstanding-command window (zero is rejected
    /// by [`SystemConfig::validate`]).
    pub fn client_window(&mut self, window: usize) -> &mut Self {
        self.client_window = window;
        self
    }

    /// Sets the per-group retained-log cap in decided batches (zero is
    /// rejected by [`SystemConfig::validate`]).
    pub fn log_retention(&mut self, batches: usize) -> &mut Self {
        self.log_retention = batches;
        self
    }

    /// Sets (or clears) the automatic checkpoint interval.
    pub fn checkpoint_interval(&mut self, interval: Option<Duration>) -> &mut Self {
        self.checkpoint_interval = interval;
        self
    }

    /// Sets (or clears) the directory durable snapshots are persisted
    /// under. Each replica uses the `r<replica>` subdirectory.
    pub fn snapshot_dir(&mut self, dir: Option<PathBuf>) -> &mut Self {
        self.snapshot_dir = dir;
        self
    }

    /// Sets the state-transfer chunk size in bytes (zero is rejected by
    /// [`SystemConfig::validate`]).
    pub fn transfer_chunk_bytes(&mut self, bytes: usize) -> &mut Self {
        self.transfer_chunk_bytes = bytes;
        self
    }

    /// Sets the per-message state-transfer timeout.
    pub fn transfer_timeout(&mut self, timeout: Duration) -> &mut Self {
        self.transfer_timeout = timeout;
        self
    }

    /// Sets (or clears) the directory the per-group write-ahead logs
    /// live under. Each multicast group uses the `g<group>` subdirectory.
    pub fn wal_dir(&mut self, dir: Option<PathBuf>) -> &mut Self {
        self.wal_dir = dir;
        self
    }

    /// Sets the WAL group-commit window in appends per `fsync` (zero is
    /// rejected by [`SystemConfig::validate`]).
    pub fn wal_batch(&mut self, appends: usize) -> &mut Self {
        self.wal_batch = appends;
        self
    }

    /// Sets the WAL segment-rotation threshold in bytes (zero is
    /// rejected by [`SystemConfig::validate`]).
    pub fn wal_segment_bytes(&mut self, bytes: usize) -> &mut Self {
        self.wal_segment_bytes = bytes;
        self
    }

    /// Enables (or disables) pipelined group commit: fan-out proceeds
    /// while the covering `fsync` runs on the WAL sync thread, and client
    /// responses are gated on the durability watermark instead.
    pub fn wal_pipeline(&mut self, on: bool) -> &mut Self {
        self.wal_pipeline = on;
        self
    }

    /// Sets the pipelined sync thread's group-commit pacing interval.
    pub fn wal_sync_pace(&mut self, pace: Duration) -> &mut Self {
        self.wal_sync_pace = pace;
        self
    }

    /// Sets the per-subscriber delivery-queue capacity in decided batches
    /// (zero is rejected by [`SystemConfig::validate`]).
    pub fn delivery_queue(&mut self, batches: usize) -> &mut Self {
        self.delivery_queue = batches;
        self
    }

    /// Sets the per-worker execution-ring capacity in requests (zero is
    /// rejected by [`SystemConfig::validate`]).
    pub fn exec_ring(&mut self, requests: usize) -> &mut Self {
        self.exec_ring = requests;
        self
    }

    /// Sets the lifecycle-trace sampling rate: every N-th batch sequence
    /// per group is traced through the pipeline stages. `0` is a valid
    /// off-switch (unlike the capacity knobs, tracing is optional).
    pub fn trace_sample(&mut self, every_nth: u64) -> &mut Self {
        self.trace_sample = every_nth;
        self
    }

    /// Number of multicast groups the deployment uses: one per worker plus
    /// the shared `g_all` group every worker subscribes to (§VI-A).
    pub fn group_count(&self) -> usize {
        self.mpl + 1
    }

    /// The index of the shared group `g_all` to which every worker thread
    /// of every replica belongs.
    pub fn all_group(&self) -> crate::ids::GroupId {
        crate::ids::GroupId::new(self.mpl)
    }

    /// Acceptor crash failures each Paxos instance tolerates (majority
    /// quorums): `⌊(a - 1) / 2⌋`.
    pub fn acceptor_fault_tolerance(&self) -> usize {
        (self.n_acceptors - 1) / 2
    }
}

impl Default for SystemConfig {
    /// A single-worker configuration, equivalent to classical SMR.
    fn default() -> Self {
        Self::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let cfg = SystemConfig::new(8);
        assert_eq!(cfg.n_replicas, 2);
        assert_eq!(cfg.n_acceptors, 3);
        assert_eq!(cfg.batch_bytes, 8 * 1024);
        assert_eq!(cfg.client_window, 50);
    }

    #[test]
    #[should_panic(expected = "multiprogramming level")]
    fn zero_mpl_is_rejected() {
        let _ = SystemConfig::new(0);
    }

    #[test]
    fn group_count_includes_g_all() {
        let cfg = SystemConfig::new(4);
        assert_eq!(cfg.group_count(), 5);
        assert_eq!(cfg.all_group().as_raw(), 4);
    }

    #[test]
    fn builder_setters_chain() {
        let mut cfg = SystemConfig::new(2);
        cfg.replicas(3)
            .acceptors(5)
            .batch_bytes(1024)
            .client_window(10);
        assert_eq!(cfg.n_replicas, 3);
        assert_eq!(cfg.n_acceptors, 5);
        assert_eq!(cfg.acceptor_fault_tolerance(), 2);
        assert_eq!(cfg.batch_bytes, 1024);
        assert_eq!(cfg.client_window, 10);
    }

    #[test]
    fn three_acceptors_tolerate_one_failure() {
        assert_eq!(SystemConfig::new(1).acceptor_fault_tolerance(), 1);
    }

    #[test]
    fn default_is_sequential_smr_shape() {
        let cfg = SystemConfig::default();
        assert_eq!(cfg.mpl, 1);
        assert_eq!(cfg.group_count(), 2);
    }

    #[test]
    fn recovery_knobs_have_safe_defaults_and_chain() {
        let mut cfg = SystemConfig::new(2);
        assert_eq!(cfg.log_retention, 4096);
        assert_eq!(cfg.checkpoint_interval, None);
        cfg.log_retention(16)
            .checkpoint_interval(Some(Duration::from_millis(50)));
        assert_eq!(cfg.log_retention, 16);
        assert_eq!(cfg.checkpoint_interval, Some(Duration::from_millis(50)));
        cfg.log_retention(0);
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::ZeroRetention),
            "zero retention is rejected, not clamped"
        );
    }

    #[test]
    fn transfer_and_durability_knobs_have_safe_defaults_and_chain() {
        let mut cfg = SystemConfig::new(2);
        assert_eq!(cfg.snapshot_dir, None);
        assert_eq!(cfg.transfer_chunk_bytes, 4096);
        assert_eq!(cfg.transfer_timeout, Duration::from_millis(250));
        cfg.snapshot_dir(Some(PathBuf::from("/tmp/psmr")))
            .transfer_chunk_bytes(0)
            .transfer_timeout(Duration::from_millis(50));
        assert_eq!(cfg.snapshot_dir.as_deref(), Some("/tmp/psmr".as_ref()));
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::ZeroTransferChunk),
            "zero chunk size is rejected, not clamped"
        );
        assert_eq!(cfg.transfer_timeout, Duration::from_millis(50));
    }

    #[test]
    fn wal_knobs_have_safe_defaults_and_chain() {
        let mut cfg = SystemConfig::new(2);
        assert_eq!(cfg.wal_dir, None);
        assert_eq!(cfg.wal_batch, 16);
        assert_eq!(cfg.wal_segment_bytes, 4 * 1024 * 1024);
        cfg.wal_dir(Some(PathBuf::from("/tmp/psmr-wal")))
            .wal_batch(4)
            .wal_segment_bytes(1024);
        assert_eq!(cfg.wal_dir.as_deref(), Some("/tmp/psmr-wal".as_ref()));
        assert_eq!(cfg.wal_batch, 4);
        assert_eq!(cfg.wal_segment_bytes, 1024);
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_each_zeroed_knob_with_a_typed_error() {
        let check = |mutate: fn(&mut SystemConfig), expected: ConfigError| {
            let mut cfg = SystemConfig::new(2);
            assert_eq!(cfg.validate(), Ok(()), "defaults are valid");
            mutate(&mut cfg);
            let err = cfg.validate().expect_err("zeroed knob must be rejected");
            assert_eq!(err, expected);
            assert!(!err.to_string().is_empty());
        };
        check(
            |c| {
                c.transfer_chunk_bytes(0);
            },
            ConfigError::ZeroTransferChunk,
        );
        check(
            |c| {
                c.log_retention(0);
            },
            ConfigError::ZeroRetention,
        );
        check(
            |c| {
                c.wal_batch(0);
            },
            ConfigError::ZeroWalBatch,
        );
        check(
            |c| {
                c.wal_segment_bytes(0);
            },
            ConfigError::ZeroWalSegment,
        );
        check(
            |c| {
                c.batch_bytes(0);
            },
            ConfigError::ZeroBatchBytes,
        );
        check(
            |c| {
                c.client_window(0);
            },
            ConfigError::ZeroClientWindow,
        );
        check(
            |c| {
                c.delivery_queue(0);
            },
            ConfigError::ZeroDeliveryQueue,
        );
        check(
            |c| {
                c.exec_ring(0);
            },
            ConfigError::ZeroExecRing,
        );
    }

    #[test]
    fn pipeline_knobs_have_safe_defaults_and_chain() {
        let mut cfg = SystemConfig::new(2);
        assert!(!cfg.wal_pipeline);
        assert_eq!(cfg.delivery_queue, 1024);
        assert_eq!(cfg.exec_ring, 4096);
        cfg.wal_pipeline(true).delivery_queue(8).exec_ring(16);
        assert!(cfg.wal_pipeline);
        assert_eq!(cfg.delivery_queue, 8);
        assert_eq!(cfg.exec_ring, 16);
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn trace_sampling_defaults_on_and_zero_is_a_valid_off_switch() {
        let mut cfg = SystemConfig::new(2);
        assert_eq!(
            cfg.trace_sample, 32,
            "tracing is cheap enough to default on"
        );
        cfg.trace_sample(0);
        assert_eq!(cfg.trace_sample, 0);
        assert_eq!(
            cfg.validate(),
            Ok(()),
            "0 disables tracing; it is not a zeroed-capacity error"
        );
        cfg.trace_sample(128);
        assert_eq!(cfg.trace_sample, 128);
    }

    #[test]
    fn serde_round_trip() {
        let cfg = SystemConfig::new(6);
        let json = serde_json_like(&cfg);
        assert!(json.contains("mpl"));
    }

    // serde_json is not an allowed dependency; a Debug-format smoke check is
    // enough to ensure the derives compile and fields are visible.
    fn serde_json_like(cfg: &SystemConfig) -> String {
        format!("{cfg:?}")
    }
}
