//! Shared building blocks for the P-SMR reproduction.
//!
//! This crate hosts the vocabulary types used by every other crate in the
//! workspace:
//!
//! * [`ids`] — strongly typed identifiers for clients, replicas, multicast
//!   groups, worker threads and requests,
//! * [`envelope`] — the wire-level request/response representation exchanged
//!   between client proxies and server proxies,
//! * [`config`] — the knobs of the replicated system (multiprogramming
//!   level, batching, acceptor counts, …),
//! * [`metrics`] — latency histograms, CDFs, throughput meters and the
//!   labeled counter/gauge/histogram registry used by the evaluation
//!   harness and the instrumented hot path,
//! * [`trace`] — sampled command-lifecycle tracing: per-stage latency of
//!   decided batches through order → append → deliver → execute → release,
//! * [`export`] — metrics exposition (one-shot text dump, periodic JSONL
//!   snapshotter),
//! * [`runtime`] — the injected clock/scheduler pair every
//!   nondeterministic decision in the protocol stack flows through
//!   (real time + FIFO in production, virtual time + seeded
//!   interleaving control under the `psmr-sim` exploration harness),
//! * [`crc`] — the CRC-32 both durability layers (snapshot files, WAL
//!   record frames) guard their bytes with,
//! * [`cpu`] — Linux `/proc`-based CPU-utilization sampling, reproducing the
//!   CPU% bars of Figures 3 and 4 of the paper.
//!
//! # Example
//!
//! ```
//! use psmr_common::ids::{GroupId, WorkerId};
//!
//! let worker = WorkerId::new(3);
//! // In P-SMR the i-th worker of every replica subscribes to group g_i.
//! assert_eq!(GroupId::from(worker), GroupId::new(3));
//! ```

pub mod config;
pub mod cpu;
pub mod crc;
pub mod envelope;
pub mod error;
pub mod export;
pub mod ids;
pub mod metrics;
pub mod runtime;
pub mod trace;

pub use config::{ConfigError, SystemConfig};
pub use envelope::{Request, Response};
pub use error::CommonError;
pub use ids::{ClientId, CommandId, GroupId, ReplicaId, RequestId, WorkerId};
pub use runtime::{Clock, ClockHandle, Runtime, Scheduler};
