//! Wire-level request and response envelopes.
//!
//! A [`Request`] is what a client proxy multicasts: the command identifier
//! plus the command's marshalled input parameters, tagged with the issuing
//! client and a per-client sequence number (Algorithm 1, line 3 of the
//! paper: `multicast(γ, [cid, input])`). A [`Response`] travels back to the
//! client over one-to-one communication.
//!
//! Payloads are opaque byte strings at this layer; services define the
//! actual encoding (see `psmr-kvstore` and `psmr-netfs`).

use crate::ids::{ClientId, CommandId, RequestId};
use bytes::Bytes;
use std::fmt;

/// A marshalled command invocation as multicast by a client proxy.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Request {
    /// The client that issued the command.
    pub client: ClientId,
    /// Per-client sequence number; (`client`, `request`) is globally unique.
    pub request: RequestId,
    /// The service command being invoked.
    pub command: CommandId,
    /// Marshalled input parameters of the command.
    pub payload: Bytes,
}

impl Request {
    /// Creates a request envelope.
    pub fn new(
        client: ClientId,
        request: RequestId,
        command: CommandId,
        payload: impl Into<Bytes>,
    ) -> Self {
        Self {
            client,
            request,
            command,
            payload: payload.into(),
        }
    }

    /// Total marshalled size in bytes, used by the batching coordinator to
    /// enforce the 8 KB batch cap of the paper (§VI-A).
    pub fn wire_len(&self) -> usize {
        // client + request + command ids, plus a length-prefixed payload.
        8 + 8 + 4 + 4 + self.payload.len()
    }

    /// Serializes the request into a flat byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.client.as_raw().to_le_bytes());
        out.extend_from_slice(&self.request.as_raw().to_le_bytes());
        out.extend_from_slice(&self.command.as_raw().to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Deserializes a request previously produced by [`Request::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the buffer is truncated or the payload
    /// length prefix disagrees with the buffer size.
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        if buf.len() < 24 {
            return Err(DecodeError::Truncated {
                need: 24,
                have: buf.len(),
            });
        }
        let client = u64::from_le_bytes(buf[0..8].try_into().expect("8-byte slice"));
        let request = u64::from_le_bytes(buf[8..16].try_into().expect("8-byte slice"));
        let command = u32::from_le_bytes(buf[16..20].try_into().expect("4-byte slice"));
        let len = u32::from_le_bytes(buf[20..24].try_into().expect("4-byte slice")) as usize;
        if buf.len() < 24 + len {
            return Err(DecodeError::Truncated {
                need: 24 + len,
                have: buf.len(),
            });
        }
        Ok(Self {
            client: ClientId::new(client),
            request: RequestId::new(request),
            command: CommandId::new(command),
            payload: Bytes::copy_from_slice(&buf[24..24 + len]),
        })
    }
}

/// The reply a server proxy sends back to the issuing client.
///
/// Every replica that executes a command produces the same response
/// (commands are deterministic); the client proxy keeps the first one and
/// discards duplicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Sequence number of the request this responds to.
    pub request: RequestId,
    /// Marshalled output parameters of the command.
    pub payload: Bytes,
    /// `(group, stream seq)` of the batch that carried the command, set
    /// on the replica's release path. The client proxy uses it to stamp
    /// the final lifecycle trace stage at first receipt, so the traced
    /// chain ends where the measured latency ends — at the client.
    pub origin: Option<(usize, u64)>,
}

impl Response {
    /// Creates a response envelope.
    pub fn new(request: RequestId, payload: impl Into<Bytes>) -> Self {
        Self {
            request,
            payload: payload.into(),
            origin: None,
        }
    }
}

/// Error returned when decoding a malformed [`Request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the declared structure was complete.
    Truncated {
        /// Bytes required to finish decoding.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { need, have } => {
                write!(f, "truncated request: need {need} bytes, have {have}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Request {
        Request::new(
            ClientId::new(42),
            RequestId::new(7),
            CommandId::new(3),
            vec![1, 2, 3, 4, 5],
        )
    }

    #[test]
    fn encode_decode_round_trips() {
        let req = sample();
        let bytes = req.encode();
        assert_eq!(bytes.len(), req.wire_len());
        let back = Request::decode(&bytes).expect("decodes");
        assert_eq!(back, req);
    }

    #[test]
    fn decode_rejects_truncated_header() {
        let err = Request::decode(&[0u8; 10]).unwrap_err();
        assert_eq!(err, DecodeError::Truncated { need: 24, have: 10 });
    }

    #[test]
    fn decode_rejects_truncated_payload() {
        let mut bytes = sample().encode();
        bytes.truncate(bytes.len() - 2);
        let err = Request::decode(&bytes).unwrap_err();
        assert!(matches!(err, DecodeError::Truncated { .. }));
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn empty_payload_round_trips() {
        let req = Request::new(
            ClientId::new(0),
            RequestId::new(0),
            CommandId::new(0),
            Vec::new(),
        );
        let back = Request::decode(&req.encode()).expect("decodes");
        assert_eq!(back, req);
        assert!(back.payload.is_empty());
    }

    #[test]
    fn response_carries_request_id() {
        let resp = Response::new(RequestId::new(9), vec![8u8]);
        assert_eq!(resp.request, RequestId::new(9));
        assert_eq!(&resp.payload[..], &[8u8]);
    }
}
