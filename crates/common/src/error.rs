//! Common error types shared across the workspace.

use std::fmt;

/// Errors surfaced by the replication infrastructure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CommonError {
    /// A channel endpoint disconnected: the peer thread has shut down.
    Disconnected {
        /// Human-readable name of the peer that went away.
        peer: String,
    },
    /// A request referenced a group outside the configured range.
    UnknownGroup {
        /// The out-of-range group index.
        group: usize,
        /// The number of configured groups.
        configured: usize,
    },
    /// The system was shut down while an operation was still in flight.
    ShuttingDown,
    /// A malformed payload could not be decoded by a service.
    Malformed {
        /// Description of what failed to decode.
        what: String,
    },
}

impl fmt::Display for CommonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommonError::Disconnected { peer } => write!(f, "peer {peer} disconnected"),
            CommonError::UnknownGroup { group, configured } => {
                write!(f, "group g{group} out of range (configured: {configured})")
            }
            CommonError::ShuttingDown => write!(f, "system is shutting down"),
            CommonError::Malformed { what } => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for CommonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = CommonError::Disconnected {
            peer: "acceptor a1".into(),
        };
        assert_eq!(e.to_string(), "peer acceptor a1 disconnected");
        let e = CommonError::UnknownGroup {
            group: 9,
            configured: 5,
        };
        assert!(e.to_string().contains("g9"));
        assert!(CommonError::ShuttingDown
            .to_string()
            .contains("shutting down"));
        let e = CommonError::Malformed {
            what: "kv op tag".into(),
        };
        assert!(e.to_string().contains("kv op tag"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<CommonError>();
    }
}
