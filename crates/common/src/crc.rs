//! CRC-32 checksumming shared by the durability layers.
//!
//! Both the durable snapshot files of `psmr-recovery` and the
//! write-ahead-log record frames of `psmr-wal` guard their bytes with
//! the same IEEE 802.3 CRC-32, so the implementation lives here at the
//! vocabulary layer.

/// Number of entries in the byte-indexed lookup table.
const TABLE_LEN: usize = 256;

/// Byte-at-a-time lookup table for the reflected polynomial, built at
/// compile time so checksumming costs one table load per byte — the WAL
/// frames every appended record on the ordered delivery path, which is
/// hotter than the checkpoint-cadence snapshot writes.
const TABLE: [u32; TABLE_LEN] = {
    let mut table = [0u32; TABLE_LEN];
    let mut i = 0;
    while i < TABLE_LEN {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3, reflected polynomial) of `bytes`.
///
/// # Example
///
/// ```
/// // The standard check value for the ASCII digits "123456789".
/// assert_eq!(psmr_common::crc::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut bytes = vec![0xABu8; 64];
        let clean = crc32(&bytes);
        bytes[17] ^= 0x04;
        assert_ne!(crc32(&bytes), clean);
    }
}
