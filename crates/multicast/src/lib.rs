//! Atomic multicast built from parallel Paxos groups.
//!
//! This crate implements the multicast library of the paper's §VI-A:
//!
//! * the abstraction of **groups** is provided by composing multiple
//!   parallel instances of Paxos — one [`psmr_paxos::PaxosGroup`] per
//!   multicast group;
//! * a message is **addressed to a single group only**; commands whose
//!   destination set `γ` contains several groups are routed through the
//!   shared group `g_all` to which every worker thread of every replica
//!   belongs;
//! * each worker thread delivers from multiple streams (its own `g_i` plus
//!   `g_all`) and uses a **deterministic merge** to ensure ordered delivery,
//!   as in Multi-Ring Paxos. Idle streams emit *skip* batches so the merge
//!   keeps advancing.
//!
//! The deterministic merge guarantees the property Algorithm 1 of the paper
//! relies on: two commands are ordered consistently across replicas if they
//! are multicast to the same group or if their destination sets intersect.
//!
//! # Example
//!
//! ```
//! use psmr_common::{ids::WorkerId, SystemConfig};
//! use psmr_multicast::{Destinations, MulticastSystem};
//!
//! let cfg = SystemConfig::new(2);
//! let system = MulticastSystem::spawn(&cfg);
//! let handle = system.handle();
//! let mut stream = system.worker_stream(WorkerId::new(0));
//! system.start();
//!
//! handle.multicast(&Destinations::one(0.into()), bytes::Bytes::from_static(b"cmd"));
//! let delivered = stream.next().unwrap();
//! assert_eq!(&delivered.payload[..], b"cmd");
//! system.shutdown();
//! ```

pub mod merge;
pub mod system;

pub use merge::{Delivered, MergedStream};
pub use system::{Destinations, DurabilityView, MulticastHandle, MulticastSystem};
