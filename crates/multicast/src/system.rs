//! The multicast system: group management and routing.

use crate::merge::MergedStream;
use bytes::Bytes;
use psmr_common::ids::{GroupId, WorkerId};
use psmr_common::metrics::{global, histograms};
use psmr_common::runtime::Runtime;
use psmr_common::{trace, SystemConfig};
use psmr_netsim::live::LiveNet;
use psmr_paxos::runtime::{
    acceptor_node, DurabilityHub, GroupHandle, NetMsg, Pacing, PaxosGroup, WalMode, WalSyncer,
};
use psmr_recovery::{RecoveryError, StreamCut};
use psmr_wal::{Wal, WalOptions};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Opens group `gid`'s write-ahead log (when the deployment configured a
/// WAL directory, `<wal_dir>/g<gid>`) in the mode `cfg.wal_pipeline`
/// selects. Pipelined logs never fsync on the append path — the per-group
/// sync thread owns the group-commit cadence — so their inline window is
/// unbounded.
///
/// # Panics
///
/// Panics when the log cannot be opened or replayed — a deployment that
/// asked for a durable ordered log must not come up silently
/// non-durable.
fn group_wal_mode(
    cfg: &SystemConfig,
    gid: usize,
    syncer: &Option<Arc<WalSyncer>>,
    rt: &Runtime,
) -> WalMode {
    let Some(dir) = cfg.wal_dir.as_ref() else {
        return WalMode::None;
    };
    let opts = WalOptions {
        segment_bytes: cfg.wal_segment_bytes,
        batch: if cfg.wal_pipeline {
            usize::MAX
        } else {
            cfg.wal_batch
        },
    };
    let wal =
        Arc::new(Wal::open(dir.join(format!("g{gid}")), opts).expect("open group write-ahead log"));
    // Observed fsync latency, labeled per group and rolled up globally.
    wal.observe_fsync(
        global()
            .scoped("group", gid)
            .histogram(histograms::WAL_FSYNC_NS),
    );
    // Every fsync of this log — inline windowed commits included — is a
    // schedule point the injected scheduler can stretch.
    {
        let sched = Arc::clone(&rt.sched);
        wal.set_sync_hook(Some(Arc::new(move || {
            sched.reach(psmr_common::runtime::SchedulePoint::WalFsync { group: gid as u64 });
        })));
    }
    match syncer {
        Some(syncer) => WalMode::Pipelined {
            wal,
            syncer: Arc::clone(syncer),
        },
        None => WalMode::Inline(wal),
    }
}

/// The shared sync thread of a pipelined deployment (`None` when
/// pipelining is off or no WAL is configured).
fn deployment_syncer(cfg: &SystemConfig, rt: &Runtime) -> Option<Arc<WalSyncer>> {
    (cfg.wal_pipeline && cfg.wal_dir.is_some())
        .then(|| WalSyncer::spawn_rt(cfg.wal_sync_pace, rt.clone()))
}

/// The destination set `γ` of a multicast (Algorithm 1, line 2).
///
/// The C-G functions of the paper produce either a singleton (independent
/// command → parallel mode) or the set of all groups (dependent command →
/// synchronous mode); arbitrary subsets are supported for completeness.
///
/// # Example
///
/// ```
/// use psmr_common::ids::GroupId;
/// use psmr_multicast::Destinations;
///
/// let one = Destinations::one(GroupId::new(2));
/// assert!(one.is_singleton());
/// let all = Destinations::all(4);
/// assert_eq!(all.groups().len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Destinations {
    groups: Vec<GroupId>,
}

impl Destinations {
    /// A singleton destination set.
    pub fn one(group: GroupId) -> Self {
        Self {
            groups: vec![group],
        }
    }

    /// The set of all `k` per-worker groups `g_0..g_{k-1}`.
    pub fn all(k: usize) -> Self {
        Self {
            groups: (0..k).map(GroupId::new).collect(),
        }
    }

    /// An arbitrary destination set.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty: every command has at least one
    /// destination.
    pub fn some(mut groups: Vec<GroupId>) -> Self {
        assert!(
            !groups.is_empty(),
            "a command needs at least one destination group"
        );
        groups.sort_unstable();
        groups.dedup();
        Self { groups }
    }

    /// Whether the command involves exactly one group (parallel mode).
    pub fn is_singleton(&self) -> bool {
        self.groups.len() == 1
    }

    /// The groups of the set, sorted ascending.
    pub fn groups(&self) -> &[GroupId] {
        &self.groups
    }

    /// Whether the given group is a destination.
    pub fn contains(&self, group: GroupId) -> bool {
        self.groups.binary_search(&group).is_ok()
    }

    /// The deterministically elected executor group: `min{j : g_j ∈ γ}`
    /// (Algorithm 1, line 16).
    pub fn executor(&self) -> GroupId {
        self.groups[0]
    }
}

/// A running multicast deployment: one Paxos group per per-worker stream
/// plus the shared `g_all` stream.
///
/// See the [crate-level example](crate).
#[derive(Debug)]
pub struct MulticastSystem {
    groups: Vec<PaxosGroup>,
    cfg: SystemConfig,
    /// The shared round clock of the deployment (absent for single-stream
    /// layouts): one thread ticking every `cfg.skip_interval`, broadcast to
    /// every group so all streams advance in lockstep.
    ticker: Option<TickerHandle>,
    /// Shared WAL sync thread of a pipelined (`cfg.wal_pipeline`)
    /// deployment.
    syncer: Option<Arc<WalSyncer>>,
    /// The injected clock/scheduler pair everything in this deployment
    /// steps on (real time + FIFO unless a test injected otherwise).
    rt: Runtime,
}

/// Read-side of a pipelined deployment's durability state: per-group
/// watermarks plus the hub a response-holdback thread parks on.
/// Cloneable; obtained from [`MulticastSystem::durability`].
#[derive(Debug, Clone)]
pub struct DurabilityView {
    handles: Vec<GroupHandle>,
    hub: Arc<DurabilityHub>,
}

impl DurabilityView {
    /// The durability watermark of `group`: the highest stream sequence
    /// number whose batch is covered by an `fsync`.
    ///
    /// # Panics
    ///
    /// Panics if `group` is outside the deployment's layout.
    pub fn durable_seq(&self, group: GroupId) -> u64 {
        self.handles[group.as_raw()].durable_seq()
    }

    /// Current hub version (see [`DurabilityView::wait_past`]).
    pub fn version(&self) -> u64 {
        self.hub.version()
    }

    /// Parks until any group's watermark advances past the version
    /// `seen` (or `timeout` elapses); returns the version observed.
    pub fn wait_past(&self, seen: u64, timeout: Duration) -> u64 {
        self.hub.wait_past(seen, timeout)
    }

    /// Installs (or clears) the callback the sync thread runs inline
    /// after each watermark advance (see
    /// [`psmr_paxos::runtime::DurabilityHub::set_on_bump`]).
    pub fn set_on_bump(&self, observer: Option<Arc<dyn Fn() + Send + Sync>>) {
        self.hub.set_on_bump(observer);
    }
}

#[derive(Debug)]
struct TickerHandle {
    run: Arc<AtomicBool>,
    started: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

/// Cloneable sender side of a [`MulticastSystem`] used by client proxies.
#[derive(Debug, Clone)]
pub struct MulticastHandle {
    handles: Vec<GroupHandle>,
    all_group: GroupId,
}

impl MulticastSystem {
    /// Spawns the P-SMR group layout: `k` per-worker groups plus `g_all`
    /// (index `k`), where `k = cfg.mpl`, all round-paced by one shared
    /// ticker at `cfg.skip_interval`. With `cfg.wal_dir` set, every
    /// group's decided stream is additionally appended to a durable
    /// write-ahead log under `<wal_dir>/g<gid>`, and a spawn over a
    /// directory a previous incarnation wrote **continues** the old
    /// streams (sequence numbers and retained logs included) — the
    /// substrate half of a whole-deployment cold start. Note that a
    /// *fresh* deployment must use a fresh WAL directory; only the
    /// cold-start paths subscribe correctly to a resumed stream.
    ///
    /// # Panics
    ///
    /// Panics when `cfg` fails [`SystemConfig::validate`] or a
    /// configured write-ahead log cannot be opened.
    pub fn spawn(cfg: &SystemConfig) -> Self {
        Self::spawn_with_runtime(cfg, Runtime::real())
    }

    /// Like [`MulticastSystem::spawn`], but every nondeterministic
    /// decision of the deployment — the shared round ticker, WAL sync
    /// pacing, fault delays, fan-out — steps on the injected `rt`
    /// instead of real time and FIFO scheduling. The `psmr-sim`
    /// exploration harness enters through here.
    ///
    /// # Panics
    ///
    /// As [`MulticastSystem::spawn`].
    pub fn spawn_with_runtime(cfg: &SystemConfig, rt: Runtime) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid SystemConfig: {e}"));
        trace::global().set_sample(cfg.trace_sample);
        let syncer = deployment_syncer(cfg, &rt);
        let mut tick_txs = Vec::with_capacity(cfg.group_count());
        let groups = (0..cfg.group_count())
            .map(|gid| {
                let (tx, rx) = crossbeam::channel::unbounded();
                tick_txs.push(tx);
                PaxosGroup::spawn_with_wal_mode(
                    gid,
                    cfg,
                    LiveNet::with_runtime(rt.clone()),
                    Pacing::Ticks(rx),
                    group_wal_mode(cfg, gid, &syncer, &rt),
                )
            })
            .collect();
        let run = Arc::new(AtomicBool::new(true));
        let started = Arc::new(AtomicBool::new(false));
        let interval = cfg.skip_interval;
        let thread = {
            let run = Arc::clone(&run);
            let started = Arc::clone(&started);
            let clock = Arc::clone(&rt.clock);
            std::thread::Builder::new()
                .name("mcast-ticker".into())
                .spawn(move || {
                    let mut tick = 0u64;
                    while run.load(Ordering::Relaxed) {
                        clock.sleep(interval);
                        if !started.load(Ordering::Relaxed) {
                            continue;
                        }
                        tick += 1;
                        for tx in &tick_txs {
                            let _ = tx.send(tick);
                        }
                    }
                })
                .expect("spawn multicast ticker")
        };
        Self {
            groups,
            cfg: cfg.clone(),
            ticker: Some(TickerHandle {
                run,
                started,
                thread: Some(thread),
            }),
            syncer,
            rt,
        }
    }

    /// Spawns a single totally-ordered stream (the SMR / sP-SMR layout):
    /// one group, no skips needed. Durable-log behavior matches
    /// [`MulticastSystem::spawn`], with only `g0`'s log in play.
    ///
    /// # Panics
    ///
    /// Panics when `cfg` fails [`SystemConfig::validate`] or a
    /// configured write-ahead log cannot be opened.
    pub fn spawn_single(cfg: &SystemConfig) -> Self {
        Self::spawn_single_with_runtime(cfg, Runtime::real())
    }

    /// The injected-runtime variant of [`MulticastSystem::spawn_single`]
    /// (see [`MulticastSystem::spawn_with_runtime`]).
    ///
    /// # Panics
    ///
    /// As [`MulticastSystem::spawn_single`].
    pub fn spawn_single_with_runtime(cfg: &SystemConfig, rt: Runtime) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid SystemConfig: {e}"));
        trace::global().set_sample(cfg.trace_sample);
        let mut single = cfg.clone();
        single.mpl = 1;
        let syncer = deployment_syncer(cfg, &rt);
        // Layout: g_0 doubles as the only stream; group count is still
        // mpl+1 but only g_0 is used. Spawn just g_0 to avoid idle threads.
        let groups = vec![PaxosGroup::spawn_with_wal_mode(
            0,
            &single,
            LiveNet::with_runtime(rt.clone()),
            Pacing::Batched,
            group_wal_mode(cfg, 0, &syncer, &rt),
        )];
        Self {
            groups,
            cfg: single,
            ticker: None,
            syncer,
            rt,
        }
    }

    /// The injected runtime this deployment steps on.
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// The durability view of a pipelined deployment (`None` unless
    /// `cfg.wal_pipeline` was on with a WAL directory configured): what
    /// the engines' response-holdback gates read watermarks from.
    pub fn durability(&self) -> Option<DurabilityView> {
        self.syncer.as_ref().map(|syncer| DurabilityView {
            handles: self.groups.iter().map(|g| g.handle()).collect(),
            hub: Arc::clone(syncer.hub()),
        })
    }

    /// Fault injection: freezes (or thaws) every group's pipelined sync
    /// thread — fsyncs stop landing and durability watermarks stop
    /// advancing, while ordering and fan-out continue. No-op on
    /// non-pipelined deployments.
    pub fn hold_wal_sync(&self, hold: bool) {
        for g in &self.groups {
            g.handle().hold_wal_sync(hold);
        }
    }

    /// Shuts the system down **through a power failure**: stops every
    /// group *without* the syncer's final flush, then discards each
    /// WAL's un-fsynced suffix — modeling the machine losing power with
    /// the group-commit windows open (a plain [`MulticastSystem::shutdown`]
    /// would flush those windows first, silently turning the scenario
    /// into a clean shutdown). Returns the total records discarded.
    pub fn shutdown_power_fail(mut self) -> u64 {
        let handles: Vec<GroupHandle> = self.groups.iter().map(|g| g.handle()).collect();
        if let Some(mut ticker) = self.ticker.take() {
            ticker.run.store(false, Ordering::Relaxed);
            if let Some(t) = ticker.thread.take() {
                let _ = t.join();
            }
        }
        let syncer = self.syncer.take();
        for g in self.groups {
            g.shutdown();
        }
        if let Some(syncer) = syncer {
            syncer.abort();
        }
        handles.iter().map(|h| h.power_fail()).sum()
    }

    /// The configuration the system was spawned with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Returns a cloneable multicast handle for client proxies.
    pub fn handle(&self) -> MulticastHandle {
        MulticastHandle {
            handles: self.groups.iter().map(|g| g.handle()).collect(),
            all_group: self.cfg.all_group(),
        }
    }

    /// Subscribes worker `t_i` of a replica: a deterministic merge of its
    /// per-worker stream `g_i` and the shared stream `g_all`.
    ///
    /// Every call creates an independent subscription, so each replica's
    /// `t_i` gets an identical merged sequence.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is outside the configured multiprogramming level
    /// or if the system was spawned with [`MulticastSystem::spawn_single`].
    pub fn worker_stream(&self, worker: WorkerId) -> MergedStream {
        assert!(
            worker.as_raw() < self.cfg.mpl,
            "worker {worker} outside MPL {}",
            self.cfg.mpl
        );
        assert!(
            self.groups.len() > 1,
            "worker streams require the P-SMR layout (use spawn, not spawn_single)"
        );
        let gi = GroupId::from(worker);
        let gall = self.cfg.all_group();
        MergedStream::new(vec![
            (gi, self.groups[gi.as_raw()].subscribe()),
            (gall, self.groups[gall.as_raw()].subscribe()),
        ])
        .with_clock(Arc::clone(&self.rt.clock))
        .with_sched(Arc::clone(&self.rt.sched))
    }

    /// Subscribes to the single totally-ordered stream of a
    /// [`MulticastSystem::spawn_single`] deployment.
    pub fn single_stream(&self) -> MergedStream {
        MergedStream::new(vec![(GroupId::new(0), self.groups[0].subscribe())])
            .with_clock(Arc::clone(&self.rt.clock))
            .with_sched(Arc::clone(&self.rt.sched))
    }

    /// Re-subscribes worker `t_i` **after** the system started, resuming
    /// right behind the checkpoint command at `cut` (which sat on the
    /// shared group). This is the catch-up path of a restarted replica:
    /// the per-worker stream replays from `cut.seq + 1` and the shared
    /// stream from `cut.seq` (suppressing the commands up to and
    /// including the cut), reproducing exactly the merge position every
    /// worker held when the checkpoint was taken.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::LogTrimmed`] when retention no longer
    /// covers the cut.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`MulticastSystem::worker_stream`], or if `cut` is not on the
    /// shared group.
    pub fn worker_stream_at(
        &self,
        worker: WorkerId,
        cut: StreamCut,
    ) -> Result<MergedStream, RecoveryError> {
        assert!(
            worker.as_raw() < self.cfg.mpl,
            "worker {worker} outside MPL {}",
            self.cfg.mpl
        );
        assert!(
            self.groups.len() > 1,
            "worker streams require the P-SMR layout (use spawn, not spawn_single)"
        );
        let gall = self.cfg.all_group();
        assert_eq!(
            cut.group, gall,
            "P-SMR checkpoints travel on the shared group"
        );
        let gi = GroupId::from(worker);
        let sub = |group: GroupId, from: u64| {
            self.groups[group.as_raw()]
                .handle()
                .subscribe_from(from)
                .map_err(|_| RecoveryError::LogTrimmed {
                    group,
                    needed: from,
                })
        };
        let streams = vec![(gi, sub(gi, cut.seq + 1)?), (gall, sub(gall, cut.seq)?)];
        Ok(MergedStream::resume(streams, cut)
            .with_clock(Arc::clone(&self.rt.clock))
            .with_sched(Arc::clone(&self.rt.sched)))
    }

    /// Subscribes worker `t_i` from the **beginning of the retained
    /// streams** (sequence number 1): the WAL-only cold-start path of a
    /// replica that has no snapshot at all — everything it ever executed
    /// is rebuilt by replaying the durable ordered logs from scratch.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::LogTrimmed`] when the logs no longer
    /// reach back to sequence number 1 (a checkpoint trimmed them; the
    /// replica needs a snapshot to recover).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`MulticastSystem::worker_stream`].
    pub fn worker_stream_from_start(
        &self,
        worker: WorkerId,
    ) -> Result<MergedStream, RecoveryError> {
        assert!(
            worker.as_raw() < self.cfg.mpl,
            "worker {worker} outside MPL {}",
            self.cfg.mpl
        );
        assert!(
            self.groups.len() > 1,
            "worker streams require the P-SMR layout (use spawn, not spawn_single)"
        );
        let gi = GroupId::from(worker);
        let gall = self.cfg.all_group();
        let sub = |group: GroupId| {
            self.groups[group.as_raw()]
                .handle()
                .subscribe_from(1)
                .map_err(|_| RecoveryError::LogTrimmed { group, needed: 1 })
        };
        Ok(MergedStream::new(vec![(gi, sub(gi)?), (gall, sub(gall)?)])
            .with_clock(Arc::clone(&self.rt.clock))
            .with_sched(Arc::clone(&self.rt.sched)))
    }

    /// Subscribes to the single stream of a
    /// [`MulticastSystem::spawn_single`] deployment from the beginning
    /// of the retained stream (see
    /// [`MulticastSystem::worker_stream_from_start`]).
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::LogTrimmed`] when the log no longer
    /// reaches back to sequence number 1.
    pub fn single_stream_from_start(&self) -> Result<MergedStream, RecoveryError> {
        let group = GroupId::new(0);
        let rx = self.groups[0]
            .handle()
            .subscribe_from(1)
            .map_err(|_| RecoveryError::LogTrimmed { group, needed: 1 })?;
        Ok(MergedStream::new(vec![(group, rx)])
            .with_clock(Arc::clone(&self.rt.clock))
            .with_sched(Arc::clone(&self.rt.sched)))
    }

    /// Re-subscribes to the single stream of a
    /// [`MulticastSystem::spawn_single`] deployment after the start,
    /// resuming right behind the checkpoint command at `cut`.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError::LogTrimmed`] when retention no longer
    /// covers the cut.
    pub fn single_stream_at(&self, cut: StreamCut) -> Result<MergedStream, RecoveryError> {
        assert_eq!(cut.group, GroupId::new(0), "single-stream cuts sit on g0");
        let rx = self.groups[0]
            .handle()
            .subscribe_from(cut.seq)
            .map_err(|_| RecoveryError::LogTrimmed {
                group: cut.group,
                needed: cut.seq,
            })?;
        Ok(MergedStream::resume(vec![(cut.group, rx)], cut)
            .with_clock(Arc::clone(&self.rt.clock))
            .with_sched(Arc::clone(&self.rt.sched)))
    }

    /// The live network of one group, for fault injection (crashing
    /// acceptors, degrading links) at the engine level.
    ///
    /// # Panics
    ///
    /// Panics if `group` is outside the configured layout.
    pub fn group_net(&self, group: GroupId) -> LiveNet<NetMsg> {
        self.groups[group.as_raw()].net()
    }

    /// Crash-stops acceptor `acceptor` of `group` (f = 1 of the paper's
    /// 3-acceptor instances keeps committing with the majority).
    ///
    /// # Panics
    ///
    /// Panics if `group` is outside the configured layout.
    pub fn crash_acceptor(&self, group: GroupId, acceptor: usize) {
        let gid = group.as_raw();
        self.groups[gid].net().crash(acceptor_node(gid, acceptor));
    }

    /// Decided batches currently retained by `group` for catch-up.
    ///
    /// # Panics
    ///
    /// Panics if `group` is outside the configured layout.
    pub fn retained_len(&self, group: GroupId) -> usize {
        self.groups[group.as_raw()].handle().retained_len()
    }

    /// Sequence number `group`'s stream will assign next — monotonic
    /// across incarnations of a WAL-backed deployment (see
    /// [`psmr_paxos::runtime::GroupHandle::next_seq`]).
    ///
    /// # Panics
    ///
    /// Panics if `group` is outside the configured layout.
    pub fn next_seq(&self, group: GroupId) -> u64 {
        self.groups[group.as_raw()].handle().next_seq()
    }

    /// Starts every group (and the shared ticker). Call once all worker
    /// streams / subscriptions have been created; before the start no
    /// batches (or skip rounds) flow.
    pub fn start(&self) {
        for g in &self.groups {
            g.start();
        }
        if let Some(ticker) = &self.ticker {
            ticker.started.store(true, Ordering::Release);
        }
    }

    /// Shuts down every group and joins their threads (the shared WAL
    /// syncer, if any, flushes its open windows and stops last).
    pub fn shutdown(mut self) {
        if let Some(mut ticker) = self.ticker.take() {
            ticker.run.store(false, Ordering::Relaxed);
            if let Some(t) = ticker.thread.take() {
                let _ = t.join();
            }
        }
        let syncer = self.syncer.take();
        for g in self.groups {
            g.shutdown();
        }
        if let Some(syncer) = syncer {
            syncer.stop();
        }
    }
}

impl MulticastHandle {
    /// Multicasts a request payload to the destination set `γ`.
    ///
    /// Routing follows §VI-A: a message can be addressed to a single group
    /// only, so singleton sets go to that group's stream and any larger set
    /// is routed through `g_all` (which every worker delivers).
    pub fn multicast(&self, destinations: &Destinations, payload: Bytes) {
        let target = if destinations.is_singleton() {
            destinations.executor()
        } else {
            self.all_group
        };
        self.handles[target.as_raw()].submit(payload);
    }

    /// Multicasts a payload through the shared serialized-request group
    /// `g_all`, regardless of destination-set size (§VI-C: "one group
    /// for serialized requests"). Used for globally dependent commands so
    /// the serialized path is identical at every MPL, including MPL 1
    /// where the "all groups" set is technically a singleton.
    pub fn multicast_serial(&self, payload: Bytes) {
        self.handles[self.all_group.as_raw()].submit(payload);
    }

    /// The shared group used for multi-destination commands.
    pub fn all_group(&self) -> GroupId {
        self.all_group
    }

    /// Trims every group's retained log down to what a recovery from the
    /// checkpoint at `cut` still needs: the cut's own stream keeps
    /// `cut.seq` onward, all earlier-merging streams keep `cut.seq + 1`
    /// onward. Idempotent — every replica calls this after installing
    /// the same checkpoint.
    pub fn trim_to_cut(&self, cut: &StreamCut) {
        for (gid, handle) in self.handles.iter().enumerate() {
            let keep_from = if GroupId::new(gid) == cut.group {
                cut.seq
            } else {
                cut.seq + 1
            };
            handle.trim_below(keep_from);
        }
    }

    /// Decided batches currently retained by `group` (diagnostics and
    /// retention tests).
    ///
    /// # Panics
    ///
    /// Panics if `group` is outside the configured layout.
    pub fn retained_len(&self, group: GroupId) -> usize {
        self.handles[group.as_raw()].retained_len()
    }

    /// Shuts down all underlying groups (used by engines owning a handle).
    pub fn shutdown(&self) {
        for h in &self.handles {
            h.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn test_cfg(mpl: usize) -> SystemConfig {
        let mut cfg = SystemConfig::new(mpl);
        cfg.batch_delay(Duration::from_micros(100))
            .skip_interval(Duration::from_micros(500));
        cfg
    }

    #[test]
    fn destinations_singleton_and_all() {
        let d = Destinations::one(GroupId::new(3));
        assert!(d.is_singleton());
        assert_eq!(d.executor(), GroupId::new(3));
        let d = Destinations::all(4);
        assert!(!d.is_singleton());
        assert_eq!(d.executor(), GroupId::new(0));
        assert!(d.contains(GroupId::new(2)));
        assert!(!d.contains(GroupId::new(4)));
    }

    #[test]
    fn destinations_some_sorts_and_dedups() {
        let d = Destinations::some(vec![GroupId::new(2), GroupId::new(0), GroupId::new(2)]);
        assert_eq!(d.groups(), &[GroupId::new(0), GroupId::new(2)]);
        assert_eq!(d.executor(), GroupId::new(0));
    }

    #[test]
    #[should_panic(expected = "at least one destination")]
    fn empty_destinations_rejected() {
        let _ = Destinations::some(Vec::new());
    }

    #[test]
    fn next_timeout_fires_under_steady_skip_traffic() {
        // On a ticker-paced (merged) deployment, skip batches arrive every
        // skip_interval even with zero traffic. The timeout must bound the
        // total wait — a per-receive timeout would never fire, leaving
        // crashed workers blocked in next_timeout indefinitely.
        let system = MulticastSystem::spawn(&test_cfg(2));
        let mut stream = system.worker_stream(WorkerId::new(0));
        system.start();
        let started = std::time::Instant::now();
        let delivered = stream
            .next_timeout(Duration::from_millis(40))
            .expect("system alive");
        assert!(delivered.is_none(), "no traffic was submitted");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "timed out promptly despite continuous skips ({:?})",
            started.elapsed()
        );
        system.shutdown();
    }

    #[test]
    fn singleton_command_reaches_only_its_worker() {
        let system = MulticastSystem::spawn(&test_cfg(2));
        let handle = system.handle();
        let mut w0 = system.worker_stream(WorkerId::new(0));
        let mut w1 = system.worker_stream(WorkerId::new(1));
        system.start();
        handle.multicast(
            &Destinations::one(GroupId::new(0)),
            Bytes::from_static(b"for-w0"),
        );
        let d = w0.next().expect("w0 delivers");
        assert_eq!(&d.payload[..], b"for-w0");
        assert_eq!(d.group, GroupId::new(0));
        // w1 must not see it: only skips flow on its streams. Drain briefly.
        std::thread::sleep(Duration::from_millis(10));
        if let Ok(Some(d)) = w1.try_next() {
            panic!("w1 unexpectedly delivered {d:?}");
        }
        system.shutdown();
    }

    #[test]
    fn multi_destination_command_reaches_every_worker() {
        let system = MulticastSystem::spawn(&test_cfg(3));
        let handle = system.handle();
        let mut streams: Vec<_> = (0..3)
            .map(|i| system.worker_stream(WorkerId::new(i)))
            .collect();
        system.start();
        handle.multicast(&Destinations::all(3), Bytes::from_static(b"everyone"));
        for s in &mut streams {
            let d = s.next().expect("delivered");
            assert_eq!(&d.payload[..], b"everyone");
            assert_eq!(d.group, GroupId::new(3), "routed via g_all");
        }
        system.shutdown();
    }

    #[test]
    fn replicas_of_the_same_worker_see_identical_sequences() {
        // Two subscriptions for worker 0 = worker t_0 of two replicas.
        let system = MulticastSystem::spawn(&test_cfg(2));
        let handle = system.handle();
        let mut replica_a = system.worker_stream(WorkerId::new(0));
        let mut replica_b = system.worker_stream(WorkerId::new(0));
        system.start();
        // Interleave singleton and all-group traffic.
        for i in 0..30u32 {
            let payload = Bytes::from(i.to_le_bytes().to_vec());
            if i % 3 == 0 {
                handle.multicast(&Destinations::all(2), payload);
            } else {
                handle.multicast(&Destinations::one(GroupId::new(0)), payload);
            }
        }
        let take = |s: &mut MergedStream, n: usize| -> Vec<(GroupId, u64, usize, u32)> {
            (0..n)
                .map(|_| {
                    let d = s.next().expect("delivered");
                    let v = u32::from_le_bytes(d.payload[..4].try_into().unwrap());
                    (d.group, d.batch_seq, d.offset, v)
                })
                .collect()
        };
        assert_eq!(take(&mut replica_a, 30), take(&mut replica_b, 30));
        system.shutdown();
    }

    #[test]
    fn same_group_commands_stay_fifo() {
        let system = MulticastSystem::spawn(&test_cfg(1));
        let handle = system.handle();
        let mut w0 = system.worker_stream(WorkerId::new(0));
        system.start();
        for i in 0..100u32 {
            handle.multicast(
                &Destinations::one(GroupId::new(0)),
                Bytes::from(i.to_le_bytes().to_vec()),
            );
        }
        let mut got = Vec::new();
        while got.len() < 100 {
            let d = w0.next().expect("delivered");
            got.push(u32::from_le_bytes(d.payload[..4].try_into().unwrap()));
        }
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        system.shutdown();
    }

    #[test]
    fn single_layout_provides_total_order() {
        let system = MulticastSystem::spawn_single(&test_cfg(8));
        let handle = system.handle();
        let mut a = system.single_stream();
        let mut b = system.single_stream();
        system.start();
        for i in 0..50u32 {
            handle.multicast(
                &Destinations::one(GroupId::new(0)),
                Bytes::from(i.to_le_bytes().to_vec()),
            );
        }
        let take = |s: &mut MergedStream, n: usize| -> Vec<u32> {
            (0..n)
                .map(|_| {
                    let d = s.next().expect("delivered");
                    u32::from_le_bytes(d.payload[..4].try_into().unwrap())
                })
                .collect()
        };
        assert_eq!(take(&mut a, 50), take(&mut b, 50));
        system.shutdown();
    }

    #[test]
    #[should_panic(expected = "outside MPL")]
    fn worker_stream_validates_worker_id() {
        let system = MulticastSystem::spawn(&test_cfg(2));
        let _ = system.worker_stream(WorkerId::new(5));
    }

    #[test]
    #[should_panic(expected = "invalid SystemConfig")]
    fn zeroed_durability_knob_is_rejected_at_spawn() {
        let mut cfg = test_cfg(1);
        cfg.wal_batch(0);
        let _ = MulticastSystem::spawn(&cfg);
    }

    /// Pipelined group commit at the multicast layer: the durability
    /// view reports per-group watermarks that catch up to everything
    /// delivered, and a held sync followed by a power-fail shutdown
    /// loses exactly the unsynced suffix — the durable prefix replays
    /// identically in the next incarnation.
    #[test]
    fn pipelined_deployment_tracks_watermarks_and_survives_power_failure() {
        let dir = std::env::temp_dir().join(format!("psmr-mcast-pipe-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = test_cfg(2);
        cfg.wal_dir(Some(dir.clone())).wal_pipeline(true);

        let system = MulticastSystem::spawn(&cfg);
        let view = system.durability().expect("pipelined deployment");
        let handle = system.handle();
        let mut w0 = system.worker_stream(WorkerId::new(0));
        system.start();
        for i in 0..10u32 {
            handle.multicast(
                &Destinations::one(GroupId::new(0)),
                Bytes::from(i.to_le_bytes().to_vec()),
            );
        }
        let mut last_seq = 0;
        for _ in 0..10 {
            let d = w0.next().expect("delivered");
            last_seq = d.batch_seq;
        }
        // The sync thread catches the watermark up to what was delivered.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while view.durable_seq(GroupId::new(0)) < last_seq {
            assert!(
                std::time::Instant::now() < deadline,
                "watermark never caught up"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        // Freeze the fsyncs, push more traffic, and lose power.
        system.hold_wal_sync(true);
        for i in 100..105u32 {
            handle.multicast(
                &Destinations::one(GroupId::new(0)),
                Bytes::from(i.to_le_bytes().to_vec()),
            );
        }
        for _ in 0..5 {
            let _ = w0.next().expect("delivered before the crash");
        }
        let dropped = system.shutdown_power_fail();
        assert!(dropped >= 5, "held suffix discarded ({dropped})");

        // The next incarnation replays only the durable prefix.
        cfg.wal_pipeline(false);
        let system = MulticastSystem::spawn(&cfg);
        let mut w0 = system
            .worker_stream_from_start(WorkerId::new(0))
            .expect("never trimmed");
        let mut got = Vec::new();
        while got.len() < 10 {
            let d = w0.next().expect("replayed");
            got.push(u32::from_le_bytes(d.payload[..4].try_into().unwrap()));
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        system.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The durable-log contract at the multicast layer: a deployment
    /// respawned over the WAL directory of a dead incarnation replays
    /// the identical merged command sequence from the beginning — the
    /// property every cold-started worker relies on.
    #[test]
    fn wal_backed_deployment_replays_identically_after_respawn() {
        let dir = std::env::temp_dir().join(format!("psmr-mcast-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = test_cfg(2);
        cfg.wal_dir(Some(dir.clone()));

        let take = |s: &mut MergedStream, n: usize| -> Vec<(GroupId, u64, usize, u32)> {
            (0..n)
                .map(|_| {
                    let d = s.next().expect("delivered");
                    let v = u32::from_le_bytes(d.payload[..4].try_into().unwrap());
                    (d.group, d.batch_seq, d.offset, v)
                })
                .collect()
        };

        // First incarnation: mixed singleton and serialized traffic.
        let system = MulticastSystem::spawn(&cfg);
        let handle = system.handle();
        let mut w0 = system.worker_stream(WorkerId::new(0));
        system.start();
        for i in 0..20u32 {
            let payload = Bytes::from(i.to_le_bytes().to_vec());
            if i % 4 == 0 {
                handle.multicast(&Destinations::all(2), payload);
            } else {
                handle.multicast(&Destinations::one(GroupId::new(0)), payload);
            }
        }
        let before = take(&mut w0, 20);
        system.shutdown();

        // Second incarnation over the same directory: the whole stream
        // set replays from the durable logs, provenance included.
        let system = MulticastSystem::spawn(&cfg);
        let mut w0 = system
            .worker_stream_from_start(WorkerId::new(0))
            .expect("logs never trimmed");
        let after = take(&mut w0, 20);
        assert_eq!(before, after, "replayed merge is byte-identical");
        system.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
