//! Deterministic merge of multiple ordered batch streams.
//!
//! Each Paxos group produces a stream of batches with contiguous sequence
//! numbers starting at 1 (skip batches included). A [`MergedStream`] over
//! streams `S_1 < S_2 < … < S_m` (sorted by group id) delivers commands in
//! *rounds*: round `r` consists of every command of batch `r` of `S_1`,
//! then batch `r` of `S_2`, and so on. Because batch contents and sequence
//! numbers are agreed through consensus, **every subscriber of the same
//! stream set observes exactly the same interleaving** — the property that
//! keeps the worker threads `t_i` of different replicas consistent.
//!
//! This is the deterministic merge of Multi-Ring Paxos (reference 9 of the paper),
//! with the skip mechanism supplied by the shared round ticker of
//! [`psmr_paxos::runtime::Pacing::Ticks`].

use bytes::Bytes;
use crossbeam::channel::{Receiver, RecvTimeoutError};
use psmr_common::ids::GroupId;
use psmr_common::runtime::{
    recv_timeout_via, ClockHandle, FifoScheduler, RealClock, SchedulePoint, Scheduler,
};
use psmr_paxos::runtime::DecidedBatch;
use psmr_recovery::StreamCut;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// A command handed out by the merge, tagged with its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivered {
    /// The group whose stream carried the command.
    pub group: GroupId,
    /// Sequence number of the batch within the group's stream.
    pub batch_seq: u64,
    /// Position of the command inside its batch.
    pub offset: usize,
    /// The opaque command payload.
    pub payload: Bytes,
}

/// Deterministically merges one or more group streams into a single ordered
/// command sequence. See the [module docs](self) for the merge rule.
#[derive(Debug)]
pub struct MergedStream {
    /// Streams sorted by group id; the round-robin order.
    streams: Vec<(GroupId, Receiver<Arc<DecidedBatch>>)>,
    /// Index of the stream whose batch is consumed next.
    cursor: usize,
    /// Sequence number expected from the stream at `cursor`.
    round: u64,
    /// Commands of the current batch not yet handed out.
    ready: VecDeque<Delivered>,
    delivered: u64,
    skipped_batches: u64,
    /// When resuming from a checkpoint cut: commands of batch
    /// `(group, seq)` at offsets `<= offset` were already executed before
    /// the cut and must not be redelivered.
    resume_skip: Option<StreamCut>,
    /// Timebase of [`MergedStream::next_timeout`] deadlines — the
    /// deployment's injected clock, so a virtual-time test controls when
    /// worker polls expire.
    clock: ClockHandle,
    /// Schedule-point hook crossed for every command handed to this
    /// subscriber. Unlike the group-side fan-out point (which delays
    /// every replica equally), this one is **per subscriber**: an
    /// injected scheduler can skew one replica's worker against
    /// another's, which is where ordering bugs hide.
    sched: Arc<dyn Scheduler>,
}

impl MergedStream {
    /// Builds a merge over the given `(group, subscription)` pairs.
    ///
    /// The pairs are sorted by group id internally so that all subscribers
    /// of the same set of groups use the identical round-robin order.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty or contains duplicate group ids.
    pub fn new(mut streams: Vec<(GroupId, Receiver<Arc<DecidedBatch>>)>) -> Self {
        assert!(
            !streams.is_empty(),
            "a merged stream needs at least one input"
        );
        streams.sort_by_key(|(g, _)| *g);
        for pair in streams.windows(2) {
            assert_ne!(pair[0].0, pair[1].0, "duplicate group in merge set");
        }
        Self {
            streams,
            cursor: 0,
            round: 1,
            ready: VecDeque::new(),
            delivered: 0,
            skipped_batches: 0,
            resume_skip: None,
            clock: Arc::new(RealClock),
            sched: Arc::new(FifoScheduler),
        }
    }

    /// Replaces the timebase of [`MergedStream::next_timeout`] deadlines
    /// (the spawn paths pass the deployment's injected clock through
    /// here).
    pub fn with_clock(mut self, clock: ClockHandle) -> Self {
        self.clock = clock;
        self
    }

    /// Installs the scheduler whose [`SchedulePoint::Delivered`] hook is
    /// crossed before each command is handed to this subscriber (the
    /// spawn paths pass the deployment's injected scheduler through
    /// here; production keeps the no-op FIFO scheduler).
    pub fn with_sched(mut self, sched: Arc<dyn Scheduler>) -> Self {
        self.sched = sched;
        self
    }

    /// Builds a merge that **resumes** right after the command at `cut`
    /// (a checkpoint's position in the serialized stream).
    ///
    /// The caller must have created the subscriptions at the matching
    /// sequence numbers: the cut's own stream (and any stream sorting
    /// after it) from `cut.seq`, every stream sorting before it from
    /// `cut.seq + 1` — exactly what the deterministic merge had consumed
    /// when the cut command was delivered. Commands of the cut batch at
    /// offsets `<= cut.offset` are suppressed (they executed before the
    /// snapshot was taken).
    ///
    /// # Panics
    ///
    /// Panics on an empty or duplicate-group stream set, or when the cut
    /// group is not part of the set.
    pub fn resume(
        mut streams: Vec<(GroupId, Receiver<Arc<DecidedBatch>>)>,
        cut: StreamCut,
    ) -> Self {
        assert!(
            !streams.is_empty(),
            "a merged stream needs at least one input"
        );
        streams.sort_by_key(|(g, _)| *g);
        for pair in streams.windows(2) {
            assert_ne!(pair[0].0, pair[1].0, "duplicate group in merge set");
        }
        let cursor = streams
            .iter()
            .position(|(g, _)| *g == cut.group)
            .expect("cut group must be part of the merge set");
        Self {
            streams,
            cursor,
            round: cut.seq,
            ready: VecDeque::new(),
            delivered: 0,
            skipped_batches: 0,
            resume_skip: Some(cut),
            clock: Arc::new(RealClock),
            sched: Arc::new(FifoScheduler),
        }
    }

    /// Crosses the per-subscriber delivery schedule point and hands the
    /// command out.
    fn hand_out(&mut self, cmd: Delivered) -> Delivered {
        self.delivered += 1;
        self.sched.reach(SchedulePoint::Delivered {
            group: cmd.group.as_raw() as u64,
            seq: cmd.batch_seq,
        });
        cmd
    }

    /// Queues the commands of `batch` (arriving from stream `group`),
    /// honouring a pending resume cut, and advances the round-robin.
    fn admit(&mut self, group: GroupId, batch: &DecidedBatch) {
        if batch.is_skip() {
            self.skipped_batches += 1;
        }
        let min_offset = match self.resume_skip {
            Some(cut) if cut.group == group && cut.seq == batch.seq => {
                self.resume_skip = None;
                cut.offset + 1
            }
            _ => 0,
        };
        for (offset, payload) in batch.commands.iter().enumerate().skip(min_offset) {
            self.ready.push_back(Delivered {
                group,
                batch_seq: batch.seq,
                offset,
                payload: payload.clone(),
            });
        }
        self.cursor += 1;
        if self.cursor == self.streams.len() {
            self.cursor = 0;
            self.round += 1;
        }
    }

    /// The groups this merge consumes, in round-robin order.
    pub fn groups(&self) -> Vec<GroupId> {
        self.streams.iter().map(|(g, _)| *g).collect()
    }

    /// Total commands delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Total skip (empty) batches consumed so far.
    pub fn skipped_batches(&self) -> u64 {
        self.skipped_batches
    }

    /// Blocks until the next command is available.
    ///
    /// Returns `None` when any input stream disconnects (system shutdown).
    // Deliberately not `Iterator`: iteration would hide the blocking
    // semantics, and the engines use `next_timeout` anyway.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Delivered> {
        loop {
            if let Some(cmd) = self.ready.pop_front() {
                return Some(self.hand_out(cmd));
            }
            let (group, rx) = &self.streams[self.cursor];
            let batch = rx.recv().ok()?;
            debug_assert_eq!(
                batch.seq, self.round,
                "stream {group} delivered batch out of order"
            );
            let group = *group;
            self.admit(group, &batch);
        }
    }

    /// Like [`MergedStream::next`] but gives up after `timeout` with
    /// `Ok(None)` — the polling variant replica workers use so a crash
    /// flag can interrupt an idle stream.
    ///
    /// The timeout bounds the **total** wait, not the per-batch wait: on a
    /// ticker-paced deployment skip batches arrive continuously even with
    /// zero traffic, and a per-receive timeout would never fire — leaving
    /// crashed workers blocked here indefinitely.
    pub fn next_timeout(&mut self, timeout: Duration) -> Result<Option<Delivered>, Disconnected> {
        let deadline = self.clock.now() + timeout;
        loop {
            if let Some(cmd) = self.ready.pop_front() {
                return Ok(Some(self.hand_out(cmd)));
            }
            let remaining = deadline.saturating_duration_since(self.clock.now());
            if remaining.is_zero() {
                return Ok(None);
            }
            let (group, rx) = &self.streams[self.cursor];
            match recv_timeout_via(&*self.clock, rx, remaining) {
                Ok(batch) => {
                    debug_assert_eq!(
                        batch.seq, self.round,
                        "stream {group} delivered batch out of order"
                    );
                    let group = *group;
                    self.admit(group, &batch);
                }
                Err(RecvTimeoutError::Timeout) => return Ok(None),
                Err(RecvTimeoutError::Disconnected) => return Err(Disconnected),
            }
        }
    }

    /// Non-blocking variant of [`MergedStream::next`]: returns `Ok(None)`
    /// when no command is currently deliverable, and `Err(())` on
    /// disconnect.
    pub fn try_next(&mut self) -> Result<Option<Delivered>, Disconnected> {
        loop {
            if let Some(cmd) = self.ready.pop_front() {
                return Ok(Some(self.hand_out(cmd)));
            }
            let (group, rx) = &self.streams[self.cursor];
            match rx.try_recv() {
                Ok(batch) => {
                    debug_assert_eq!(
                        batch.seq, self.round,
                        "stream {group} delivered batch out of order"
                    );
                    let group = *group;
                    self.admit(group, &batch);
                }
                Err(crossbeam::channel::TryRecvError::Empty) => return Ok(None),
                Err(crossbeam::channel::TryRecvError::Disconnected) => return Err(Disconnected),
            }
        }
    }
}

/// Error returned by [`MergedStream::try_next`] when an input stream's
/// group has shut down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

impl std::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "merged stream input disconnected")
    }
}

impl std::error::Error for Disconnected {}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn batch(seq: u64, cmds: &[&str]) -> Arc<DecidedBatch> {
        Arc::new(DecidedBatch {
            seq,
            commands: Arc::new(
                cmds.iter()
                    .map(|c| Bytes::copy_from_slice(c.as_bytes()))
                    .collect(),
            ),
        })
    }

    fn payloads(stream: &mut MergedStream, n: usize) -> Vec<String> {
        (0..n)
            .map(|_| {
                let d = stream.next().expect("command available");
                String::from_utf8(d.payload.to_vec()).expect("utf8")
            })
            .collect()
    }

    #[test]
    fn single_stream_passes_through_in_order() {
        let (tx, rx) = unbounded();
        let mut m = MergedStream::new(vec![(GroupId::new(0), rx)]);
        tx.send(batch(1, &["a", "b"])).unwrap();
        tx.send(batch(2, &["c"])).unwrap();
        assert_eq!(payloads(&mut m, 3), vec!["a", "b", "c"]);
        assert_eq!(m.delivered_count(), 3);
    }

    #[test]
    fn two_streams_interleave_round_robin() {
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let mut m = MergedStream::new(vec![(GroupId::new(0), rx0), (GroupId::new(1), rx1)]);
        tx0.send(batch(1, &["a1"])).unwrap();
        tx1.send(batch(1, &["b1"])).unwrap();
        tx0.send(batch(2, &["a2"])).unwrap();
        tx1.send(batch(2, &["b2"])).unwrap();
        assert_eq!(payloads(&mut m, 4), vec!["a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn merge_order_is_independent_of_construction_order() {
        let make = |flip: bool| {
            let (tx0, rx0) = unbounded();
            let (tx1, rx1) = unbounded();
            let inputs = if flip {
                vec![(GroupId::new(1), rx1), (GroupId::new(0), rx0)]
            } else {
                vec![(GroupId::new(0), rx0), (GroupId::new(1), rx1)]
            };
            let mut m = MergedStream::new(inputs);
            tx0.send(batch(1, &["x"])).unwrap();
            tx1.send(batch(1, &["y"])).unwrap();
            payloads(&mut m, 2)
        };
        assert_eq!(make(false), make(true), "sorted by group id either way");
    }

    #[test]
    fn skip_batches_advance_the_round_without_delivering() {
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let mut m = MergedStream::new(vec![(GroupId::new(0), rx0), (GroupId::new(1), rx1)]);
        // Stream 1 is idle: only skips.
        tx0.send(batch(1, &["a1"])).unwrap();
        tx1.send(batch(1, &[])).unwrap();
        tx0.send(batch(2, &["a2"])).unwrap();
        tx1.send(batch(2, &[])).unwrap();
        assert_eq!(payloads(&mut m, 2), vec!["a1", "a2"]);
        // The round-2 skip of stream 1 is consumed on the next poll.
        assert_eq!(m.try_next(), Ok(None));
        assert_eq!(m.skipped_batches(), 2);
    }

    #[test]
    fn merge_blocks_on_lagging_stream() {
        // Without stream 1's batch for the round, its commands must not be
        // overtaken by stream 0's next round.
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let mut m = MergedStream::new(vec![(GroupId::new(0), rx0), (GroupId::new(1), rx1)]);
        tx0.send(batch(1, &["a1"])).unwrap();
        tx0.send(batch(2, &["a2"])).unwrap();
        assert_eq!(payloads(&mut m, 1), vec!["a1"]);
        assert_eq!(m.try_next(), Ok(None), "round 1 of stream 1 missing");
        tx1.send(batch(1, &["b1"])).unwrap();
        assert_eq!(payloads(&mut m, 2), vec!["b1", "a2"]);
    }

    #[test]
    fn try_next_reports_disconnect() {
        let (tx, rx) = unbounded();
        let mut m = MergedStream::new(vec![(GroupId::new(0), rx)]);
        drop(tx);
        assert_eq!(m.try_next(), Err(Disconnected));
        assert!(Disconnected.to_string().contains("disconnected"));
    }

    #[test]
    fn next_returns_none_on_disconnect() {
        let (tx, rx) = unbounded();
        let mut m = MergedStream::new(vec![(GroupId::new(0), rx)]);
        tx.send(batch(1, &["last"])).unwrap();
        drop(tx);
        assert_eq!(payloads(&mut m, 1), vec!["last"]);
        assert!(m.next().is_none());
    }

    #[test]
    fn provenance_fields_are_filled() {
        let (tx, rx) = unbounded();
        let mut m = MergedStream::new(vec![(GroupId::new(7), rx)]);
        tx.send(batch(1, &["a", "b"])).unwrap();
        let d0 = m.next().unwrap();
        let d1 = m.next().unwrap();
        assert_eq!((d0.group, d0.batch_seq, d0.offset), (GroupId::new(7), 1, 0));
        assert_eq!((d1.group, d1.batch_seq, d1.offset), (GroupId::new(7), 1, 1));
    }

    #[test]
    fn resume_skips_through_the_cut_and_keeps_round_robin() {
        // Original stream layout: g0 (per-worker) and g2 (serialized).
        // The checkpoint sat at g2 batch 2, offset 1: everything up to and
        // including it already executed. The resumed merge must deliver
        // g2 batch 2 offset 2, then g0 batch 3, g2 batch 3, ...
        let (tx0, rx0) = unbounded();
        let (tx2, rx2) = unbounded();
        let cut = psmr_recovery::StreamCut {
            group: GroupId::new(2),
            seq: 2,
            offset: 1,
        };
        let mut m = MergedStream::resume(vec![(GroupId::new(0), rx0), (GroupId::new(2), rx2)], cut);
        // The caller replays g2 from seq 2 and g0 from seq 3.
        tx2.send(batch(2, &["ckpt-1", "CKPT", "after-ckpt"]))
            .unwrap();
        tx0.send(batch(3, &["a3"])).unwrap();
        tx2.send(batch(3, &["b3"])).unwrap();
        assert_eq!(payloads(&mut m, 3), vec!["after-ckpt", "a3", "b3"]);
        let d = m.try_next();
        assert_eq!(d, Ok(None));
    }

    #[test]
    fn resume_offsets_stay_original() {
        let (tx, rx) = unbounded();
        let cut = psmr_recovery::StreamCut {
            group: GroupId::new(0),
            seq: 5,
            offset: 0,
        };
        let mut m = MergedStream::resume(vec![(GroupId::new(0), rx)], cut);
        tx.send(batch(5, &["skipped", "x", "y"])).unwrap();
        let d = m.next().unwrap();
        assert_eq!((d.batch_seq, d.offset), (5, 1), "offsets keep provenance");
        let d = m.next().unwrap();
        assert_eq!((d.batch_seq, d.offset), (5, 2));
    }

    #[test]
    fn next_timeout_times_out_and_delivers() {
        let (tx, rx) = unbounded();
        let mut m = MergedStream::new(vec![(GroupId::new(0), rx)]);
        assert_eq!(
            m.next_timeout(std::time::Duration::from_millis(5)),
            Ok(None)
        );
        tx.send(batch(1, &["a"])).unwrap();
        let d = m
            .next_timeout(std::time::Duration::from_secs(1))
            .unwrap()
            .expect("delivered");
        assert_eq!(&d.payload[..], b"a");
        drop(tx);
        assert_eq!(
            m.next_timeout(std::time::Duration::from_millis(5)),
            Err(Disconnected)
        );
    }

    #[test]
    #[should_panic(expected = "cut group must be part")]
    fn resume_requires_the_cut_group() {
        let (_tx, rx) = unbounded();
        let cut = psmr_recovery::StreamCut {
            group: GroupId::new(9),
            seq: 1,
            offset: 0,
        };
        let _ = MergedStream::resume(vec![(GroupId::new(0), rx)], cut);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_merge_set_rejected() {
        let _ = MergedStream::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "duplicate group")]
    fn duplicate_groups_rejected() {
        let (_tx0, rx0) = unbounded();
        let (_tx1, rx1) = unbounded();
        let _ = MergedStream::new(vec![(GroupId::new(0), rx0), (GroupId::new(0), rx1)]);
    }
}
