//! Deterministic merge of multiple ordered batch streams.
//!
//! Each Paxos group produces a stream of batches with contiguous sequence
//! numbers starting at 1 (skip batches included). A [`MergedStream`] over
//! streams `S_1 < S_2 < … < S_m` (sorted by group id) delivers commands in
//! *rounds*: round `r` consists of every command of batch `r` of `S_1`,
//! then batch `r` of `S_2`, and so on. Because batch contents and sequence
//! numbers are agreed through consensus, **every subscriber of the same
//! stream set observes exactly the same interleaving** — the property that
//! keeps the worker threads `t_i` of different replicas consistent.
//!
//! This is the deterministic merge of Multi-Ring Paxos (reference 9 of the paper),
//! with the skip mechanism supplied by the shared round ticker of
//! [`psmr_paxos::runtime::Pacing::Ticks`].

use bytes::Bytes;
use crossbeam::channel::Receiver;
use psmr_common::ids::GroupId;
use psmr_paxos::runtime::DecidedBatch;
use std::collections::VecDeque;
use std::sync::Arc;

/// A command handed out by the merge, tagged with its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivered {
    /// The group whose stream carried the command.
    pub group: GroupId,
    /// Sequence number of the batch within the group's stream.
    pub batch_seq: u64,
    /// Position of the command inside its batch.
    pub offset: usize,
    /// The opaque command payload.
    pub payload: Bytes,
}

/// Deterministically merges one or more group streams into a single ordered
/// command sequence. See the [module docs](self) for the merge rule.
#[derive(Debug)]
pub struct MergedStream {
    /// Streams sorted by group id; the round-robin order.
    streams: Vec<(GroupId, Receiver<Arc<DecidedBatch>>)>,
    /// Index of the stream whose batch is consumed next.
    cursor: usize,
    /// Sequence number expected from the stream at `cursor`.
    round: u64,
    /// Commands of the current batch not yet handed out.
    ready: VecDeque<Delivered>,
    delivered: u64,
    skipped_batches: u64,
}

impl MergedStream {
    /// Builds a merge over the given `(group, subscription)` pairs.
    ///
    /// The pairs are sorted by group id internally so that all subscribers
    /// of the same set of groups use the identical round-robin order.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty or contains duplicate group ids.
    pub fn new(mut streams: Vec<(GroupId, Receiver<Arc<DecidedBatch>>)>) -> Self {
        assert!(!streams.is_empty(), "a merged stream needs at least one input");
        streams.sort_by_key(|(g, _)| *g);
        for pair in streams.windows(2) {
            assert_ne!(pair[0].0, pair[1].0, "duplicate group in merge set");
        }
        Self {
            streams,
            cursor: 0,
            round: 1,
            ready: VecDeque::new(),
            delivered: 0,
            skipped_batches: 0,
        }
    }

    /// The groups this merge consumes, in round-robin order.
    pub fn groups(&self) -> Vec<GroupId> {
        self.streams.iter().map(|(g, _)| *g).collect()
    }

    /// Total commands delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Total skip (empty) batches consumed so far.
    pub fn skipped_batches(&self) -> u64 {
        self.skipped_batches
    }

    /// Blocks until the next command is available.
    ///
    /// Returns `None` when any input stream disconnects (system shutdown).
    pub fn next(&mut self) -> Option<Delivered> {
        loop {
            if let Some(cmd) = self.ready.pop_front() {
                self.delivered += 1;
                return Some(cmd);
            }
            let (group, rx) = &self.streams[self.cursor];
            let batch = rx.recv().ok()?;
            debug_assert_eq!(
                batch.seq, self.round,
                "stream {group} delivered batch out of order"
            );
            if batch.is_skip() {
                self.skipped_batches += 1;
            }
            for (offset, payload) in batch.commands.iter().enumerate() {
                self.ready.push_back(Delivered {
                    group: *group,
                    batch_seq: batch.seq,
                    offset,
                    payload: payload.clone(),
                });
            }
            self.cursor += 1;
            if self.cursor == self.streams.len() {
                self.cursor = 0;
                self.round += 1;
            }
        }
    }

    /// Non-blocking variant of [`MergedStream::next`]: returns `Ok(None)`
    /// when no command is currently deliverable, and `Err(())` on
    /// disconnect.
    pub fn try_next(&mut self) -> Result<Option<Delivered>, Disconnected> {
        loop {
            if let Some(cmd) = self.ready.pop_front() {
                self.delivered += 1;
                return Ok(Some(cmd));
            }
            let (group, rx) = &self.streams[self.cursor];
            match rx.try_recv() {
                Ok(batch) => {
                    debug_assert_eq!(
                        batch.seq, self.round,
                        "stream {group} delivered batch out of order"
                    );
                    if batch.is_skip() {
                        self.skipped_batches += 1;
                    }
                    for (offset, payload) in batch.commands.iter().enumerate() {
                        self.ready.push_back(Delivered {
                            group: *group,
                            batch_seq: batch.seq,
                            offset,
                            payload: payload.clone(),
                        });
                    }
                    self.cursor += 1;
                    if self.cursor == self.streams.len() {
                        self.cursor = 0;
                        self.round += 1;
                    }
                }
                Err(crossbeam::channel::TryRecvError::Empty) => return Ok(None),
                Err(crossbeam::channel::TryRecvError::Disconnected) => return Err(Disconnected),
            }
        }
    }
}

/// Error returned by [`MergedStream::try_next`] when an input stream's
/// group has shut down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

impl std::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "merged stream input disconnected")
    }
}

impl std::error::Error for Disconnected {}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn batch(seq: u64, cmds: &[&str]) -> Arc<DecidedBatch> {
        Arc::new(DecidedBatch {
            seq,
            commands: cmds.iter().map(|c| Bytes::copy_from_slice(c.as_bytes())).collect(),
        })
    }

    fn payloads(stream: &mut MergedStream, n: usize) -> Vec<String> {
        (0..n)
            .map(|_| {
                let d = stream.next().expect("command available");
                String::from_utf8(d.payload.to_vec()).expect("utf8")
            })
            .collect()
    }

    #[test]
    fn single_stream_passes_through_in_order() {
        let (tx, rx) = unbounded();
        let mut m = MergedStream::new(vec![(GroupId::new(0), rx)]);
        tx.send(batch(1, &["a", "b"])).unwrap();
        tx.send(batch(2, &["c"])).unwrap();
        assert_eq!(payloads(&mut m, 3), vec!["a", "b", "c"]);
        assert_eq!(m.delivered_count(), 3);
    }

    #[test]
    fn two_streams_interleave_round_robin() {
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let mut m =
            MergedStream::new(vec![(GroupId::new(0), rx0), (GroupId::new(1), rx1)]);
        tx0.send(batch(1, &["a1"])).unwrap();
        tx1.send(batch(1, &["b1"])).unwrap();
        tx0.send(batch(2, &["a2"])).unwrap();
        tx1.send(batch(2, &["b2"])).unwrap();
        assert_eq!(payloads(&mut m, 4), vec!["a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn merge_order_is_independent_of_construction_order() {
        let make = |flip: bool| {
            let (tx0, rx0) = unbounded();
            let (tx1, rx1) = unbounded();
            let inputs = if flip {
                vec![(GroupId::new(1), rx1), (GroupId::new(0), rx0)]
            } else {
                vec![(GroupId::new(0), rx0), (GroupId::new(1), rx1)]
            };
            let mut m = MergedStream::new(inputs);
            tx0.send(batch(1, &["x"])).unwrap();
            tx1.send(batch(1, &["y"])).unwrap();
            payloads(&mut m, 2)
        };
        assert_eq!(make(false), make(true), "sorted by group id either way");
    }

    #[test]
    fn skip_batches_advance_the_round_without_delivering() {
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let mut m =
            MergedStream::new(vec![(GroupId::new(0), rx0), (GroupId::new(1), rx1)]);
        // Stream 1 is idle: only skips.
        tx0.send(batch(1, &["a1"])).unwrap();
        tx1.send(batch(1, &[])).unwrap();
        tx0.send(batch(2, &["a2"])).unwrap();
        tx1.send(batch(2, &[])).unwrap();
        assert_eq!(payloads(&mut m, 2), vec!["a1", "a2"]);
        // The round-2 skip of stream 1 is consumed on the next poll.
        assert_eq!(m.try_next(), Ok(None));
        assert_eq!(m.skipped_batches(), 2);
    }

    #[test]
    fn merge_blocks_on_lagging_stream() {
        // Without stream 1's batch for the round, its commands must not be
        // overtaken by stream 0's next round.
        let (tx0, rx0) = unbounded();
        let (tx1, rx1) = unbounded();
        let mut m =
            MergedStream::new(vec![(GroupId::new(0), rx0), (GroupId::new(1), rx1)]);
        tx0.send(batch(1, &["a1"])).unwrap();
        tx0.send(batch(2, &["a2"])).unwrap();
        assert_eq!(payloads(&mut m, 1), vec!["a1"]);
        assert_eq!(m.try_next(), Ok(None), "round 1 of stream 1 missing");
        tx1.send(batch(1, &["b1"])).unwrap();
        assert_eq!(payloads(&mut m, 2), vec!["b1", "a2"]);
    }

    #[test]
    fn try_next_reports_disconnect() {
        let (tx, rx) = unbounded();
        let mut m = MergedStream::new(vec![(GroupId::new(0), rx)]);
        drop(tx);
        assert_eq!(m.try_next(), Err(Disconnected));
        assert!(Disconnected.to_string().contains("disconnected"));
    }

    #[test]
    fn next_returns_none_on_disconnect() {
        let (tx, rx) = unbounded();
        let mut m = MergedStream::new(vec![(GroupId::new(0), rx)]);
        tx.send(batch(1, &["last"])).unwrap();
        drop(tx);
        assert_eq!(payloads(&mut m, 1), vec!["last"]);
        assert!(m.next().is_none());
    }

    #[test]
    fn provenance_fields_are_filled() {
        let (tx, rx) = unbounded();
        let mut m = MergedStream::new(vec![(GroupId::new(7), rx)]);
        tx.send(batch(1, &["a", "b"])).unwrap();
        let d0 = m.next().unwrap();
        let d1 = m.next().unwrap();
        assert_eq!((d0.group, d0.batch_seq, d0.offset), (GroupId::new(7), 1, 0));
        assert_eq!((d1.group, d1.batch_seq, d1.offset), (GroupId::new(7), 1, 1));
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_merge_set_rejected() {
        let _ = MergedStream::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "duplicate group")]
    fn duplicate_groups_rejected() {
        let (_tx0, rx0) = unbounded();
        let (_tx1, rx1) = unbounded();
        let _ = MergedStream::new(vec![(GroupId::new(0), rx0), (GroupId::new(0), rx1)]);
    }
}
