//! Property: deterministic merge gives every replica's worker `t_i` the
//! exact same command sequence, for arbitrary traffic patterns — the
//! invariant Algorithm 1's correctness argument (§IV-E) builds on.

use bytes::Bytes;
use proptest::prelude::*;
use psmr_common::ids::{GroupId, WorkerId};
use psmr_common::SystemConfig;
use psmr_multicast::{Destinations, MergedStream, MulticastSystem};
use std::time::Duration;

/// One client action in the generated schedule.
#[derive(Debug, Clone)]
enum Action {
    /// Independent command to worker group `g`.
    One(usize),
    /// Dependent command to every group (via `g_all`).
    All,
}

fn action_strategy(mpl: usize) -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => (0..mpl).prop_map(Action::One),
        1 => Just(Action::All),
    ]
}

fn take(stream: &mut MergedStream, n: usize) -> Vec<(GroupId, u64, usize, u32)> {
    (0..n)
        .map(|_| {
            let d = stream.next().expect("delivered");
            let v = u32::from_le_bytes(d.payload[..4].try_into().expect("4-byte payload"));
            (d.group, d.batch_seq, d.offset, v)
        })
        .collect()
}

proptest! {
    // End-to-end runs spawn real threads; keep the case count modest.
    #![proptest_config(ProptestConfig {
        cases: 12, max_shrink_iters: 20
    })]

    #[test]
    fn replicas_see_identical_merged_sequences(
        actions in prop::collection::vec(action_strategy(3), 1..60),
    ) {
        let mpl = 3;
        let mut cfg = SystemConfig::new(mpl);
        cfg.batch_delay(Duration::from_micros(50))
            .skip_interval(Duration::from_micros(300));
        let system = MulticastSystem::spawn(&cfg);
        let handle = system.handle();
        // Two "replicas": two independent subscriptions per worker.
        let mut replica_a: Vec<MergedStream> =
            (0..mpl).map(|i| system.worker_stream(WorkerId::new(i))).collect();
        let mut replica_b: Vec<MergedStream> =
            (0..mpl).map(|i| system.worker_stream(WorkerId::new(i))).collect();
        system.start();

        // Expected command count per worker: its own singles + every All.
        let mut expect = vec![0usize; mpl];
        for (i, action) in actions.iter().enumerate() {
            let payload = Bytes::from((i as u32).to_le_bytes().to_vec());
            match action {
                Action::One(g) => {
                    handle.multicast(&Destinations::one(GroupId::new(*g)), payload);
                    expect[*g] += 1;
                }
                Action::All => {
                    handle.multicast(&Destinations::all(mpl), payload);
                    for e in expect.iter_mut() {
                        *e += 1;
                    }
                }
            }
        }

        for (w, want) in expect.iter().enumerate() {
            let got_a = take(&mut replica_a[w], *want);
            let got_b = take(&mut replica_b[w], *want);
            prop_assert_eq!(&got_a, &got_b, "worker {} diverged across replicas", w);
            // Same-group commands keep submission order.
            let per_group_vals: Vec<u32> = got_a
                .iter()
                .filter(|(g, ..)| *g == GroupId::new(w))
                .map(|&(.., v)| v)
                .collect();
            let mut sorted = per_group_vals.clone();
            sorted.sort_unstable();
            prop_assert_eq!(per_group_vals, sorted, "worker {} lost FIFO order", w);
        }

        system.shutdown();
    }
}

/// Deterministic (non-proptest) variant asserting the cross-worker relative
/// order of dependent commands.
#[test]
fn dependent_commands_order_identically_at_every_worker() {
    let mpl = 4;
    let mut cfg = SystemConfig::new(mpl);
    cfg.batch_delay(Duration::from_micros(50))
        .skip_interval(Duration::from_micros(300));
    let system = MulticastSystem::spawn(&cfg);
    let handle = system.handle();
    let mut workers: Vec<MergedStream> = (0..mpl)
        .map(|i| system.worker_stream(WorkerId::new(i)))
        .collect();
    system.start();

    let total_all = 40u32;
    for i in 0..total_all {
        handle.multicast(
            &Destinations::all(mpl),
            Bytes::from(i.to_le_bytes().to_vec()),
        );
        // Sprinkle singles between the dependent commands.
        handle.multicast(
            &Destinations::one(GroupId::new((i as usize) % mpl)),
            Bytes::from((1000 + i).to_le_bytes().to_vec()),
        );
    }

    let gall = cfg.all_group();
    let mut reference: Option<Vec<u32>> = None;
    for (w, stream) in workers.iter_mut().enumerate() {
        let want = total_all as usize + (total_all as usize / mpl);
        let seq = take(stream, want);
        let alls: Vec<u32> = seq
            .iter()
            .filter(|(g, ..)| *g == gall)
            .map(|&(.., v)| v)
            .collect();
        assert_eq!(
            alls.len(),
            total_all as usize,
            "worker {w} missed g_all traffic"
        );
        match &reference {
            None => reference = Some(alls),
            Some(r) => assert_eq!(&alls, r, "worker {w} ordered g_all differently"),
        }
    }
    system.shutdown();
}
