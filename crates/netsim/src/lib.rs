//! In-process network simulation.
//!
//! The paper's protocols assume an asynchronous message-passing system with
//! crash failures (§II). This crate provides two substrates that model that
//! system on a single host:
//!
//! * [`sim`] — a **deterministic discrete-event simulator**: actors exchange
//!   messages through a virtual-time event queue; a seeded RNG controls
//!   delays, drops, duplication and reordering. Used by the property tests
//!   that check Paxos safety under adversarial schedules.
//! * [`live`] — a **threaded channel network**: real OS threads connected by
//!   `crossbeam` channels, with optional per-link delay/loss injection and
//!   node crashes. Used by the end-to-end replication runs and benchmarks,
//!   where channel round-trips stand in for the cluster network of the
//!   paper's testbed (see the substitution table in `DESIGN.md`).
//!
//! # Example: deterministic simulation
//!
//! ```
//! use psmr_netsim::sim::{NodeId, SimConfig, SimNetwork};
//!
//! let mut net: SimNetwork<&'static str> = SimNetwork::new(SimConfig::default(), 42);
//! let a = NodeId::new(0);
//! let b = NodeId::new(1);
//! net.send(a, b, "ping");
//! let delivered = net.step().expect("one message in flight");
//! assert_eq!(delivered.to, b);
//! assert_eq!(delivered.message, "ping");
//! ```

pub mod live;
pub mod sim;

pub use live::{Gateway, LinkFault, LiveNet};
pub use sim::{Delivery, NodeId, SimConfig, SimNetwork};
