//! Deterministic discrete-event network simulator.
//!
//! Messages are queued with a virtual delivery time drawn from a seeded RNG;
//! [`SimNetwork::step`] pops the earliest message. The same seed always
//! yields the same schedule, which makes protocol property tests
//! reproducible: a failing seed can be replayed exactly.
//!
//! Fault injection: per-link loss probability, message duplication,
//! asymmetric partitions and node crashes. These model the asynchronous
//! crash-failure system of the paper's §II.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

/// Identifies a node (an actor) in the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u64);

impl NodeId {
    /// Creates a node id from a raw integer.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw integer value.
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Tunable fault model of the simulated network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Minimum virtual latency of a message, in simulated microseconds.
    pub min_delay_us: u64,
    /// Maximum virtual latency of a message.
    pub max_delay_us: u64,
    /// Probability that any given message is silently dropped.
    pub loss: f64,
    /// Probability that a message is delivered twice (models retransmission
    /// at-least-once behaviour of a real multicast library).
    pub duplicate: f64,
}

impl Default for SimConfig {
    /// A fair but jittery network: 10–500 µs latency, no loss.
    fn default() -> Self {
        Self {
            min_delay_us: 10,
            max_delay_us: 500,
            loss: 0.0,
            duplicate: 0.0,
        }
    }
}

impl SimConfig {
    /// A lossy, highly reordering network for adversarial tests.
    pub fn adversarial() -> Self {
        Self {
            min_delay_us: 1,
            max_delay_us: 10_000,
            loss: 0.05,
            duplicate: 0.05,
        }
    }
}

/// A message handed to an actor by [`SimNetwork::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<M> {
    /// Sender of the message.
    pub from: NodeId,
    /// Destination of the message.
    pub to: NodeId,
    /// The payload.
    pub message: M,
    /// Virtual time (µs) at which the message is delivered.
    pub at_us: u64,
}

#[derive(Debug)]
struct Queued<M> {
    at_us: u64,
    seq: u64, // tie-breaker for determinism
    from: NodeId,
    to: NodeId,
    message: M,
}

impl<M> PartialEq for Queued<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at_us == other.at_us && self.seq == other.seq
    }
}
impl<M> Eq for Queued<M> {}
impl<M> PartialOrd for Queued<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Queued<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at_us, self.seq).cmp(&(other.at_us, other.seq))
    }
}

/// Deterministic discrete-event network.
///
/// See the [crate-level example](crate) for basic usage.
#[derive(Debug)]
pub struct SimNetwork<M> {
    config: SimConfig,
    rng: StdRng,
    queue: BinaryHeap<Reverse<Queued<M>>>,
    now_us: u64,
    seq: u64,
    crashed: HashSet<NodeId>,
    /// Directed blocked links (from, to); both directions must be inserted
    /// to model a symmetric partition.
    cut_links: HashSet<(NodeId, NodeId)>,
    sent: u64,
    dropped: u64,
}

impl<M: Clone> SimNetwork<M> {
    /// Creates a network with the given fault model and RNG seed.
    pub fn new(config: SimConfig, seed: u64) -> Self {
        Self {
            config,
            rng: StdRng::seed_from_u64(seed),
            queue: BinaryHeap::new(),
            now_us: 0,
            seq: 0,
            crashed: HashSet::new(),
            cut_links: HashSet::new(),
            sent: 0,
            dropped: 0,
        }
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Number of messages accepted by [`SimNetwork::send`] so far.
    pub fn sent_count(&self) -> u64 {
        self.sent
    }

    /// Number of messages dropped by loss, crash or partition so far.
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Sends `message` from `from` to `to`, subject to the fault model.
    ///
    /// Messages from or to crashed nodes and messages crossing a cut link
    /// are dropped. Lost messages count in [`SimNetwork::dropped_count`].
    pub fn send(&mut self, from: NodeId, to: NodeId, message: M) {
        self.sent += 1;
        if self.crashed.contains(&from)
            || self.crashed.contains(&to)
            || self.cut_links.contains(&(from, to))
        {
            self.dropped += 1;
            return;
        }
        if self.config.loss > 0.0 && self.rng.gen_bool(self.config.loss) {
            self.dropped += 1;
            return;
        }
        let copies = if self.config.duplicate > 0.0 && self.rng.gen_bool(self.config.duplicate) {
            2
        } else {
            1
        };
        for _ in 0..copies {
            let delay = self
                .rng
                .gen_range(self.config.min_delay_us..=self.config.max_delay_us);
            self.seq += 1;
            self.queue.push(Reverse(Queued {
                at_us: self.now_us + delay,
                seq: self.seq,
                from,
                to,
                message: message.clone(),
            }));
        }
    }

    /// Delivers the next message in virtual-time order, advancing the clock.
    ///
    /// Returns `None` when no messages are in flight. Messages addressed to
    /// nodes that crashed *after* the send are discarded at delivery time
    /// (the simulation keeps stepping past them).
    pub fn step(&mut self) -> Option<Delivery<M>> {
        while let Some(Reverse(q)) = self.queue.pop() {
            self.now_us = self.now_us.max(q.at_us);
            if self.crashed.contains(&q.to) {
                self.dropped += 1;
                continue;
            }
            return Some(Delivery {
                from: q.from,
                to: q.to,
                message: q.message,
                at_us: q.at_us,
            });
        }
        None
    }

    /// Marks a node as crashed: all of its in-flight and future traffic is
    /// discarded. Crash failures are permanent (crash-stop model, §II).
    pub fn crash(&mut self, node: NodeId) {
        self.crashed.insert(node);
    }

    /// Returns whether a node has crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.contains(&node)
    }

    /// Cuts the directed link `from → to`.
    pub fn cut(&mut self, from: NodeId, to: NodeId) {
        self.cut_links.insert((from, to));
    }

    /// Cuts both directions between two nodes (symmetric partition edge).
    pub fn partition_pair(&mut self, a: NodeId, b: NodeId) {
        self.cut(a, b);
        self.cut(b, a);
    }

    /// Heals the directed link `from → to`.
    pub fn heal(&mut self, from: NodeId, to: NodeId) {
        self.cut_links.remove(&(from, to));
    }

    /// Heals every cut link.
    pub fn heal_all(&mut self) {
        self.cut_links.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u64) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn delivers_in_virtual_time_order() {
        let mut net: SimNetwork<u32> = SimNetwork::new(SimConfig::default(), 7);
        for i in 0..100 {
            net.send(n(0), n(1), i);
        }
        let mut last = 0;
        let mut count = 0;
        while let Some(d) = net.step() {
            assert!(d.at_us >= last, "time went backwards");
            last = d.at_us;
            count += 1;
        }
        assert_eq!(count, 100);
        assert_eq!(net.now_us(), last);
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed| {
            let mut net: SimNetwork<u32> = SimNetwork::new(SimConfig::adversarial(), seed);
            for i in 0..200 {
                net.send(n(i % 3), n((i + 1) % 3), i as u32);
            }
            let mut order = Vec::new();
            while let Some(d) = net.step() {
                order.push((d.at_us, d.message));
            }
            order
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100), "different seeds should differ");
    }

    #[test]
    fn crashed_node_receives_nothing() {
        let mut net: SimNetwork<&str> = SimNetwork::new(SimConfig::default(), 1);
        net.send(n(0), n(1), "pre-crash, in flight");
        net.crash(n(1));
        net.send(n(0), n(1), "post-crash");
        assert!(net.step().is_none(), "both messages discarded");
        assert!(net.is_crashed(n(1)));
        assert_eq!(net.dropped_count(), 2);
    }

    #[test]
    fn crashed_node_sends_nothing() {
        let mut net: SimNetwork<&str> = SimNetwork::new(SimConfig::default(), 1);
        net.crash(n(0));
        net.send(n(0), n(1), "from the dead");
        assert!(net.step().is_none());
    }

    #[test]
    fn partition_blocks_and_heals() {
        let mut net: SimNetwork<&str> = SimNetwork::new(SimConfig::default(), 1);
        net.partition_pair(n(0), n(1));
        net.send(n(0), n(1), "blocked");
        net.send(n(1), n(0), "also blocked");
        assert!(net.step().is_none());
        net.heal_all();
        net.send(n(0), n(1), "through");
        assert_eq!(net.step().expect("delivered").message, "through");
    }

    #[test]
    fn asymmetric_cut_only_blocks_one_direction() {
        let mut net: SimNetwork<&str> = SimNetwork::new(SimConfig::default(), 1);
        net.cut(n(0), n(1));
        net.send(n(0), n(1), "blocked");
        net.send(n(1), n(0), "allowed");
        let d = net.step().expect("reverse direction open");
        assert_eq!(d.message, "allowed");
        assert!(net.step().is_none());
    }

    #[test]
    fn loss_drops_roughly_the_configured_fraction() {
        let cfg = SimConfig {
            loss: 0.5,
            ..SimConfig::default()
        };
        let mut net: SimNetwork<u32> = SimNetwork::new(cfg, 3);
        for i in 0..1000 {
            net.send(n(0), n(1), i);
        }
        let delivered = std::iter::from_fn(|| net.step()).count();
        assert!((300..700).contains(&delivered), "delivered = {delivered}");
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let cfg = SimConfig {
            duplicate: 1.0,
            ..SimConfig::default()
        };
        let mut net: SimNetwork<u32> = SimNetwork::new(cfg, 3);
        net.send(n(0), n(1), 42);
        let copies = std::iter::from_fn(|| net.step())
            .filter(|d| d.message == 42)
            .count();
        assert_eq!(copies, 2);
    }

    #[test]
    fn counters_track_sent_and_in_flight() {
        let mut net: SimNetwork<u32> = SimNetwork::new(SimConfig::default(), 5);
        net.send(n(0), n(1), 1);
        net.send(n(0), n(1), 2);
        assert_eq!(net.sent_count(), 2);
        assert_eq!(net.in_flight(), 2);
        net.step();
        assert_eq!(net.in_flight(), 1);
    }
}
