//! Threaded channel network with fault injection.
//!
//! [`LiveNet`] connects real OS threads through unbounded `crossbeam`
//! channels, optionally routing traffic through an injector thread that
//! applies per-link delay and loss. The end-to-end replication runs use the
//! direct (fault-free) path, whose cost is a single channel hop — our
//! stand-in for the paper's gigabit cluster links; the fault path is used
//! by tests that crash acceptors or delay streams.

use crate::sim::NodeId;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use psmr_common::runtime::{Runtime, SendVerdict};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A per-link fault: messages on the link are delayed and/or dropped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Fixed extra delay applied to every message on the link.
    pub delay: Duration,
    /// Probability that a message on the link is dropped.
    pub loss: f64,
}

impl LinkFault {
    /// A fault that only delays.
    pub fn delay(delay: Duration) -> Self {
        Self { delay, loss: 0.0 }
    }

    /// A fault that only drops, with the given probability.
    pub fn loss(loss: f64) -> Self {
        Self {
            delay: Duration::ZERO,
            loss,
        }
    }
}

/// Egress hook for destinations with no local inbox: `(from, to, &msg)`,
/// returns whether the message was handed to a remote substrate.
pub type Gateway<M> = Arc<dyn Fn(NodeId, NodeId, &M) -> bool + Send + Sync>;

/// Slot holding the optional gateway (newtype so `Shared` keeps its
/// derived `Debug` despite the non-`Debug` closure inside).
struct GatewaySlot<M>(RwLock<Option<Gateway<M>>>);

impl<M> std::fmt::Debug for GatewaySlot<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let installed = self.0.read().is_some();
        f.debug_tuple("GatewaySlot").field(&installed).finish()
    }
}

#[derive(Debug)]
struct Shared<M> {
    inboxes: RwLock<HashMap<NodeId, Sender<(NodeId, M)>>>,
    faults: RwLock<HashMap<(NodeId, NodeId), LinkFault>>,
    /// Directed links with a message budget left before they go dead:
    /// `sever_after` installs a count, every delivery decrements it, and a
    /// link at zero drops everything (models a sender dying mid-stream).
    cuts: RwLock<HashMap<(NodeId, NodeId), u64>>,
    crashed: RwLock<HashMap<NodeId, ()>>,
    /// Where sends to nodes without a local inbox go (multi-process
    /// deployments bridge them onto TCP); `None` = drop, the historical
    /// single-process behavior.
    gateway: GatewaySlot<M>,
    shutdown: AtomicBool,
}

/// A live, threaded message network.
///
/// Clone handles freely: all clones share the same registry.
///
/// # Example
///
/// ```
/// use psmr_netsim::live::LiveNet;
/// use psmr_netsim::sim::NodeId;
///
/// let net: LiveNet<String> = LiveNet::new();
/// let a = NodeId::new(0);
/// let b = NodeId::new(1);
/// let _a_inbox = net.register(a);
/// let b_inbox = net.register(b);
/// net.send(a, b, "hello".to_string());
/// let (from, msg) = b_inbox.recv().unwrap();
/// assert_eq!(from, a);
/// assert_eq!(msg, "hello");
/// ```
#[derive(Debug)]
pub struct LiveNet<M> {
    shared: Arc<Shared<M>>,
    runtime: Runtime,
    rng_seed: u64,
}

impl<M> Clone for LiveNet<M> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
            runtime: self.runtime.clone(),
            rng_seed: self.rng_seed,
        }
    }
}

impl<M: Send + 'static> LiveNet<M> {
    /// Creates an empty network on the production runtime (real clock,
    /// FIFO scheduling).
    pub fn new() -> Self {
        Self::with_runtime(Runtime::real())
    }

    /// Creates an empty network whose sends consult `runtime`'s
    /// scheduler and whose fault delays sleep on its clock. Everything
    /// spawned over this net (Paxos groups, transfer servers) inherits
    /// the runtime via [`LiveNet::runtime`].
    pub fn with_runtime(runtime: Runtime) -> Self {
        Self {
            shared: Arc::new(Shared {
                inboxes: RwLock::new(HashMap::new()),
                faults: RwLock::new(HashMap::new()),
                cuts: RwLock::new(HashMap::new()),
                crashed: RwLock::new(HashMap::new()),
                gateway: GatewaySlot(RwLock::new(None)),
                shutdown: AtomicBool::new(false),
            }),
            runtime,
            rng_seed: 0xD15EA5E,
        }
    }

    /// The injected runtime this net (and everything running over it)
    /// steps on.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Registers a node and returns its inbox.
    ///
    /// Re-registering a node replaces its inbox (the old receiver
    /// disconnects), which models a process restart.
    pub fn register(&self, node: NodeId) -> Receiver<(NodeId, M)> {
        let (tx, rx) = unbounded();
        self.shared.inboxes.write().insert(node, tx);
        rx
    }

    /// Sends a message; returns `false` if it was dropped (unknown or
    /// crashed destination, crashed sender, fault-injected loss, or
    /// shutdown).
    pub fn send(&self, from: NodeId, to: NodeId, message: M) -> bool {
        if self.shared.shutdown.load(Ordering::Relaxed) {
            return false;
        }
        {
            let crashed = self.shared.crashed.read();
            if crashed.contains_key(&from) || crashed.contains_key(&to) {
                return false;
            }
        }
        // Fast path: the cuts map is empty in every non-fault-injection
        // run, and the message path is hot (every Paxos hop) — only take
        // the exclusive lock when a cut is actually installed.
        if !self.shared.cuts.read().is_empty() {
            let mut cuts = self.shared.cuts.write();
            if let Some(remaining) = cuts.get_mut(&(from, to)) {
                if *remaining == 0 {
                    return false;
                }
                *remaining -= 1;
            }
        }
        // The injected scheduler sees every send that survived the
        // fault filters above; a simulation scheduler may drop or delay
        // it here to perturb the interleaving.
        if self.runtime.sched.on_send(from.as_raw(), to.as_raw()) == SendVerdict::Drop {
            return false;
        }
        let fault = self.shared.faults.read().get(&(from, to)).copied();
        if let Some(fault) = fault {
            if fault.loss > 0.0 {
                // Cheap thread-local-free decision; determinism is not
                // needed on the live path.
                let mut rng =
                    StdRng::seed_from_u64(self.rng_seed ^ (from.as_raw() << 32) ^ to.as_raw());
                if rng.gen_bool(fault.loss) {
                    return false;
                }
            }
            if !fault.delay.is_zero() {
                self.runtime.clock.sleep(fault.delay);
            }
        }
        if let Some(tx) = self.shared.inboxes.read().get(&to) {
            return tx.send((from, message)).is_ok();
        }
        // No local inbox: hand the message to the gateway (a TCP bridge
        // in multi-process deployments) if one is installed.
        match self.shared.gateway.0.read().as_ref() {
            Some(gateway) => gateway(from, to, &message),
            None => false,
        }
    }

    /// Installs the egress gateway consulted for destinations with no
    /// local inbox. Local delivery always wins; the gateway only ever
    /// sees traffic for nodes this process does not host.
    pub fn set_gateway(&self, gateway: Gateway<M>) {
        *self.shared.gateway.0.write() = Some(gateway);
    }

    /// Delivers a message to a **locally registered** node, bypassing
    /// the gateway — the injection point a TCP bridge's inbound thread
    /// uses (never re-consulting the gateway, so bridged traffic cannot
    /// loop back out). Returns `false` when the destination has no local
    /// inbox or the net is shut down.
    pub fn deliver(&self, from: NodeId, to: NodeId, message: M) -> bool {
        if self.shared.shutdown.load(Ordering::Relaxed) {
            return false;
        }
        match self.shared.inboxes.read().get(&to) {
            Some(tx) => tx.send((from, message)).is_ok(),
            None => false,
        }
    }

    /// Installs a fault on the directed link `from → to`.
    pub fn inject(&self, from: NodeId, to: NodeId, fault: LinkFault) {
        self.shared.faults.write().insert((from, to), fault);
    }

    /// Removes any fault on the directed link, including a pending or
    /// tripped [`LiveNet::sever_after`] cut.
    pub fn heal(&self, from: NodeId, to: NodeId) {
        self.shared.faults.write().remove(&(from, to));
        self.shared.cuts.write().remove(&(from, to));
    }

    /// Severs the directed link `from → to` after `budget` more messages:
    /// the next `budget` sends deliver, everything after is dropped. With
    /// `budget` 0 the link is dead immediately. Used by recovery tests to
    /// crash a state-transfer peer *mid-stream*, deterministically.
    pub fn sever_after(&self, from: NodeId, to: NodeId, budget: u64) {
        self.shared.cuts.write().insert((from, to), budget);
    }

    /// Crashes a node: its inbox is removed and all traffic from/to it is
    /// dropped from now on (crash-stop).
    pub fn crash(&self, node: NodeId) {
        self.shared.crashed.write().insert(node, ());
        self.shared.inboxes.write().remove(&node);
    }

    /// Returns whether the node is crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.shared.crashed.read().contains_key(&node)
    }

    /// Crash-stops **every currently registered node** at once — the
    /// whole-deployment power failure. Every inbox disconnects and all
    /// traffic is dropped until nodes are individually
    /// [`LiveNet::restart`]ed (or, for a cold start, a fresh network is
    /// built by the new incarnation). Nodes registered *after* this call
    /// are unaffected.
    pub fn crash_all(&self) {
        let mut inboxes = self.shared.inboxes.write();
        let mut crashed = self.shared.crashed.write();
        for (&node, _) in inboxes.iter() {
            crashed.insert(node, ());
        }
        inboxes.clear();
    }

    /// Clears a node's crash-stop status so a **new incarnation** of the
    /// process can [`LiveNet::register`] under the same id. The restarted
    /// node has a fresh (empty) inbox; nothing sent while it was down is
    /// recovered — exactly a process restart.
    pub fn restart(&self, node: NodeId) {
        self.shared.crashed.write().remove(&node);
    }

    /// Shuts the network down: every subsequent send is dropped and inbox
    /// receivers disconnect, unblocking any thread parked on `recv()`.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.inboxes.write().clear();
    }
}

impl<M: Send + 'static> Default for LiveNet<M> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn n(i: u64) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn point_to_point_delivery() {
        let net: LiveNet<u32> = LiveNet::new();
        let rx = net.register(n(1));
        assert!(net.send(n(0), n(1), 7));
        assert_eq!(rx.recv().unwrap(), (n(0), 7));
    }

    #[test]
    fn send_to_unregistered_node_is_dropped() {
        let net: LiveNet<u32> = LiveNet::new();
        assert!(!net.send(n(0), n(9), 1));
    }

    #[test]
    fn crash_disconnects_inbox_and_blocks_traffic() {
        let net: LiveNet<u32> = LiveNet::new();
        let rx = net.register(n(1));
        net.crash(n(1));
        assert!(!net.send(n(0), n(1), 1));
        assert!(rx.recv().is_err(), "inbox sender dropped on crash");
        assert!(net.is_crashed(n(1)));
        // A crashed node cannot send either.
        let _rx2 = net.register(n(2));
        assert!(!net.send(n(1), n(2), 1));
    }

    #[test]
    fn sever_after_delivers_a_budget_then_goes_dead() {
        let net: LiveNet<u32> = LiveNet::new();
        let rx = net.register(n(1));
        net.sever_after(n(0), n(1), 2);
        assert!(net.send(n(0), n(1), 1));
        assert!(net.send(n(0), n(1), 2));
        assert!(!net.send(n(0), n(1), 3), "budget exhausted");
        assert!(!net.send(n(0), n(1), 4), "stays dead");
        // Other links are unaffected.
        let rx2 = net.register(n(2));
        assert!(net.send(n(0), n(2), 9));
        assert_eq!(rx.try_recv().unwrap().1, 1);
        assert_eq!(rx.try_recv().unwrap().1, 2);
        assert!(rx.try_recv().is_err());
        assert_eq!(rx2.try_recv().unwrap().1, 9);
        // heal() clears the cut.
        net.heal(n(0), n(1));
        assert!(net.send(n(0), n(1), 5));
    }

    #[test]
    fn restart_clears_crash_stop_for_a_new_incarnation() {
        let net: LiveNet<u32> = LiveNet::new();
        let _old = net.register(n(1));
        net.crash(n(1));
        assert!(!net.send(n(0), n(1), 1));
        net.restart(n(1));
        assert!(!net.is_crashed(n(1)));
        // Still unreachable until the new incarnation registers…
        assert!(!net.send(n(0), n(1), 2));
        let fresh = net.register(n(1));
        assert!(net.send(n(0), n(1), 3));
        // …and the fresh inbox holds only post-restart traffic.
        assert_eq!(fresh.try_recv().unwrap().1, 3);
        assert!(fresh.try_recv().is_err());
    }

    #[test]
    fn crash_all_takes_down_every_registered_node() {
        let net: LiveNet<u32> = LiveNet::new();
        let rx1 = net.register(n(1));
        let rx2 = net.register(n(2));
        net.crash_all();
        assert!(net.is_crashed(n(1)) && net.is_crashed(n(2)));
        assert!(!net.send(n(1), n(2), 7), "crashed nodes cannot talk");
        assert!(rx1.recv().is_err() && rx2.recv().is_err());
        // A node restarted after the blackout registers a fresh inbox.
        net.restart(n(1));
        let fresh = net.register(n(1));
        net.restart(n(2));
        let _ = net.register(n(2));
        assert!(net.send(n(2), n(1), 9));
        assert_eq!(fresh.recv().unwrap().1, 9);
        // Nodes registered after the blackout are unaffected by it.
        let rx3 = net.register(n(3));
        assert!(net.send(n(1), n(3), 1));
        assert_eq!(rx3.recv().unwrap().1, 1);
    }

    #[test]
    fn total_loss_fault_drops_everything() {
        let net: LiveNet<u32> = LiveNet::new();
        let _rx = net.register(n(1));
        net.inject(n(0), n(1), LinkFault::loss(1.0));
        assert!(!net.send(n(0), n(1), 1));
        net.heal(n(0), n(1));
        assert!(net.send(n(0), n(1), 2));
    }

    #[test]
    fn delay_fault_delays_but_delivers() {
        let net: LiveNet<u32> = LiveNet::new();
        let rx = net.register(n(1));
        net.inject(n(0), n(1), LinkFault::delay(Duration::from_millis(20)));
        let started = std::time::Instant::now();
        assert!(net.send(n(0), n(1), 5));
        assert_eq!(rx.recv().unwrap().1, 5);
        assert!(started.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn shutdown_unblocks_receivers() {
        let net: LiveNet<u32> = LiveNet::new();
        let rx = net.register(n(1));
        let net2 = net.clone();
        let waiter = thread::spawn(move || rx.recv().is_err());
        thread::sleep(Duration::from_millis(10));
        net2.shutdown();
        assert!(waiter.join().unwrap(), "recv unblocked with disconnect");
        assert!(!net.send(n(0), n(1), 1));
    }

    #[test]
    fn gateway_sees_only_unhosted_destinations() {
        let net: LiveNet<u32> = LiveNet::new();
        let local = net.register(n(1));
        let seen = Arc::new(RwLock::new(Vec::new()));
        let log = Arc::clone(&seen);
        net.set_gateway(Arc::new(move |from, to, msg: &u32| {
            log.write().push((from, to, *msg));
            true
        }));
        // Local inbox wins: the gateway never sees this send.
        assert!(net.send(n(0), n(1), 7));
        assert_eq!(local.recv().unwrap().1, 7);
        // Unhosted destination: routed through the gateway.
        assert!(net.send(n(0), n(9), 8));
        assert_eq!(*seen.read(), vec![(n(0), n(9), 8)]);
        // deliver() injects locally and never consults the gateway.
        assert!(net.deliver(n(9), n(1), 5));
        assert_eq!(local.recv().unwrap(), (n(9), 5));
        assert!(!net.deliver(n(9), n(42), 5), "no local inbox");
        assert_eq!(seen.read().len(), 1);
    }

    #[test]
    fn clones_share_the_registry() {
        let net: LiveNet<u32> = LiveNet::new();
        let clone = net.clone();
        let rx = clone.register(n(3));
        assert!(net.send(n(0), n(3), 9));
        assert_eq!(rx.recv().unwrap().1, 9);
    }

    #[test]
    fn many_senders_one_receiver() {
        let net: LiveNet<u64> = LiveNet::new();
        let rx = net.register(n(0));
        let mut handles = Vec::new();
        for t in 1..=8u64 {
            let net = net.clone();
            handles.push(thread::spawn(move || {
                for i in 0..100u64 {
                    assert!(net.send(n(t), n(0), t * 1000 + i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut got = 0;
        while rx.try_recv().is_ok() {
            got += 1;
        }
        assert_eq!(got, 800);
    }
}
