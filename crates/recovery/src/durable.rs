//! Durable (on-disk) snapshots.
//!
//! A [`DurableStore`] persists each coordinated checkpoint — snapshot
//! bytes plus its [`StreamCut`] manifest and the remap epoch in force —
//! as one self-describing file. Writes go to a temporary file first and
//! are published with an **atomic rename**, so a crash mid-write never
//! leaves a half-visible checkpoint: the store either still serves the
//! previous file or already serves the complete new one. Loads verify a
//! CRC-32 over the snapshot body and skip (never trust) corrupt files.
//!
//! This is the "recover from your own disk" half of the recovery story:
//! a fully-restarted replica process restores from the newest valid file
//! in its own directory, then catches up from live peers (see
//! [`crate::transfer`]) when the cluster has checkpointed past it.

use crate::{Checkpoint, StreamCut};
use psmr_common::ids::GroupId;
use psmr_common::metrics::{counters, global};
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// File magic: identifies a durable P-SMR snapshot.
const MAGIC: &[u8; 8] = b"PSMRSNAP";
/// On-disk layout version: v2 adds the remap overlay table so repartition
/// pins survive a cold start (see `table` in [`DurableCheckpoint`]).
const VERSION: u32 = 2;
/// The pre-table layout; still decoded (with an empty table) so existing
/// snapshot files stay loadable.
const VERSION_V1: u32 = 1;
/// Fixed v2 header length: magic + version + id + cut (group, seq,
/// offset) + epoch + table length + body length + crc over table ++ body.
const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 4;
/// Fixed v1 header length: as v2, without the table length field.
const HEADER_LEN_V1: usize = 8 + 4 + 8 + 8 + 8 + 8 + 8 + 8 + 4;

/// CRC-32 of the snapshot body — the shared [`psmr_common::crc::crc32`],
/// the same checksum the WAL record frames use.
pub use psmr_common::crc::crc32;

/// A checkpoint as recovered from disk: the in-memory artifact plus the
/// remap epoch that was in force when it was persisted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurableCheckpoint {
    /// The persisted checkpoint (id, cut, snapshot bytes).
    pub checkpoint: Checkpoint,
    /// Remap epoch in force when the checkpoint was taken.
    pub epoch: u64,
    /// Serialized remap overlay table in force at `epoch` (empty when no
    /// remap happened, and for files persisted by the v1 layout). A cold
    /// start installs this before replaying the log suffix, so commands
    /// pinned to a remapped group re-route exactly as they did live.
    pub table: Vec<u8>,
}

/// One replica's on-disk checkpoint repository.
///
/// # Example
///
/// ```
/// use psmr_common::ids::GroupId;
/// use psmr_recovery::{Checkpoint, DurableStore, StreamCut};
///
/// let dir = std::env::temp_dir().join("psmr-durable-doctest");
/// let _ = std::fs::remove_dir_all(&dir);
/// let store = DurableStore::open(&dir).unwrap();
/// assert!(store.load_latest().is_none());
/// let ckpt = Checkpoint {
///     id: 1,
///     cut: StreamCut { group: GroupId::new(2), seq: 9, offset: 0 },
///     snapshot: vec![1, 2, 3],
/// };
/// store.persist(&ckpt, 0, &[]).unwrap();
/// let back = store.load_latest().unwrap();
/// assert_eq!(back.checkpoint, ckpt);
/// std::fs::remove_dir_all(&dir).unwrap();
/// ```
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
}

impl DurableStore {
    /// Opens (creating if needed) the store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The directory the store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Persists one checkpoint (tagged with the remap `epoch` in force
    /// and its serialized overlay `table`): writes `ckpt-<id>.psmr.tmp`,
    /// fsyncs, then atomically renames it into place. Returns the
    /// published path.
    ///
    /// # Errors
    ///
    /// Returns the underlying error of the failed write/rename; a failed
    /// persist leaves no partial file visible to [`DurableStore::load_latest`].
    pub fn persist(
        &self,
        checkpoint: &Checkpoint,
        epoch: u64,
        table: &[u8],
    ) -> io::Result<PathBuf> {
        let name = format!("ckpt-{:020}.psmr", checkpoint.id);
        let tmp = self.dir.join(format!("{name}.tmp"));
        let published = self.dir.join(name);
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&encode(checkpoint, epoch, table))?;
            file.sync_all()?;
        }
        fs::rename(&tmp, &published)?;
        global().counter(counters::SNAPSHOTS_PERSISTED).inc();
        Ok(published)
    }

    /// Loads the newest valid checkpoint: scans every `*.psmr` file,
    /// decodes and crc-verifies each, and returns the one with the
    /// newest [`StreamCut`]. Corrupt or truncated files are skipped (and
    /// counted under `snapshot_load_failures`), never trusted — a
    /// damaged newest file therefore **falls back to the next-older
    /// valid checkpoint** instead of erroring the restart.
    pub fn load_latest(&self) -> Option<DurableCheckpoint> {
        let newest = self.load_all().into_iter().next();
        if newest.is_some() {
            global().counter(counters::SNAPSHOTS_LOADED).inc();
        }
        newest
    }

    /// Loads **every** valid checkpoint, newest cut first — the
    /// candidate list a cold start walks when the newest snapshot's log
    /// suffix turns out unusable. Corrupt files are skipped exactly as
    /// in [`DurableStore::load_latest`].
    pub fn load_all(&self) -> Vec<DurableCheckpoint> {
        let mut valid = Vec::new();
        for path in self.snapshot_files() {
            match read_file(&path) {
                Some(loaded) => valid.push(loaded),
                None => {
                    global().counter(counters::SNAPSHOT_LOAD_FAILURES).inc();
                }
            }
        }
        valid.sort_by(|a, b| {
            (
                b.checkpoint.cut.seq,
                b.checkpoint.cut.offset,
                b.checkpoint.id,
            )
                .cmp(&(
                    a.checkpoint.cut.seq,
                    a.checkpoint.cut.offset,
                    a.checkpoint.id,
                ))
        });
        valid
    }

    /// Deletes all but the `keep` newest snapshot files (by checkpoint id,
    /// which grows with the cut). Returns how many files were removed.
    ///
    /// # Errors
    ///
    /// Returns the first deletion error; earlier deletions stick.
    pub fn retain_newest(&self, keep: usize) -> io::Result<usize> {
        let mut files = self.snapshot_files();
        files.sort();
        let excess = files.len().saturating_sub(keep);
        for path in &files[..excess] {
            fs::remove_file(path)?;
        }
        Ok(excess)
    }

    /// Paths of every published (non-temporary) snapshot file.
    fn snapshot_files(&self) -> Vec<PathBuf> {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "psmr"))
            .collect()
    }
}

/// Serializes a checkpoint into the v2 on-disk layout (see module docs).
fn encode(checkpoint: &Checkpoint, epoch: u64, table: &[u8]) -> Vec<u8> {
    let body = &checkpoint.snapshot;
    let mut out = Vec::with_capacity(HEADER_LEN + table.len() + body.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&checkpoint.id.to_le_bytes());
    out.extend_from_slice(&(checkpoint.cut.group.as_raw() as u64).to_le_bytes());
    out.extend_from_slice(&checkpoint.cut.seq.to_le_bytes());
    out.extend_from_slice(&(checkpoint.cut.offset as u64).to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(table.len() as u64).to_le_bytes());
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    let mut crc_input = Vec::with_capacity(table.len() + body.len());
    crc_input.extend_from_slice(table);
    crc_input.extend_from_slice(body);
    out.extend_from_slice(&crc32(&crc_input).to_le_bytes());
    out.extend_from_slice(table);
    out.extend_from_slice(body);
    out
}

/// Parses and verifies the on-disk layout — v2, or v1 (no table field,
/// decoded with an empty table). `None` on any mismatch.
fn decode(bytes: &[u8]) -> Option<DurableCheckpoint> {
    if bytes.len() < HEADER_LEN_V1 || &bytes[..8] != MAGIC {
        return None;
    }
    let u32_at = |at: usize| -> u32 { u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) };
    let u64_at = |at: usize| -> u64 { u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()) };
    let version = u32_at(8);
    let id = u64_at(12);
    let cut = StreamCut {
        group: GroupId::new(usize::try_from(u64_at(20)).ok()?),
        seq: u64_at(28),
        offset: usize::try_from(u64_at(36)).ok()?,
    };
    let epoch = u64_at(44);
    let (table_len, body_len, crc, payload) = match version {
        VERSION => {
            if bytes.len() < HEADER_LEN {
                return None;
            }
            let table_len = usize::try_from(u64_at(52)).ok()?;
            let body_len = usize::try_from(u64_at(60)).ok()?;
            (table_len, body_len, u32_at(68), bytes.get(HEADER_LEN..)?)
        }
        VERSION_V1 => {
            let body_len = usize::try_from(u64_at(52)).ok()?;
            (0, body_len, u32_at(60), bytes.get(HEADER_LEN_V1..)?)
        }
        _ => return None,
    };
    if payload.len() != table_len + body_len || crc32(payload) != crc {
        return None;
    }
    Some(DurableCheckpoint {
        checkpoint: Checkpoint {
            id,
            cut,
            snapshot: payload[table_len..].to_vec(),
        },
        epoch,
        table: payload[..table_len].to_vec(),
    })
}

/// Reads and decodes one snapshot file; `None` on any I/O or format error.
fn read_file(path: &Path) -> Option<DurableCheckpoint> {
    let mut bytes = Vec::new();
    fs::File::open(path).ok()?.read_to_end(&mut bytes).ok()?;
    decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn unique_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "psmr-durable-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn ckpt(id: u64, seq: u64, snapshot: Vec<u8>) -> Checkpoint {
        Checkpoint {
            id,
            cut: StreamCut {
                group: GroupId::new(4),
                seq,
                offset: 1,
            },
            snapshot,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn persist_then_load_round_trips_with_epoch() {
        let dir = unique_dir("roundtrip");
        let store = DurableStore::open(&dir).unwrap();
        assert!(store.load_latest().is_none(), "empty store");
        store.persist(&ckpt(1, 5, vec![1, 2, 3]), 7, &[]).unwrap();
        store.persist(&ckpt(2, 9, vec![4, 5]), 8, b"pins").unwrap();
        let latest = store.load_latest().expect("two files on disk");
        assert_eq!(latest.checkpoint.id, 2);
        assert_eq!(latest.checkpoint.cut.seq, 9);
        assert_eq!(latest.checkpoint.snapshot, vec![4, 5]);
        assert_eq!(latest.epoch, 8);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_files_are_skipped_not_trusted() {
        let dir = unique_dir("corrupt");
        let store = DurableStore::open(&dir).unwrap();
        let good = ckpt(1, 5, vec![9; 64]);
        store.persist(&good, 0, &[]).unwrap();
        // A newer-looking file with a flipped body byte: crc must reject it.
        let mut bytes = encode(&ckpt(2, 9, vec![7; 64]), 0, &[]);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(dir.join("ckpt-00000000000000000002.psmr"), bytes).unwrap();
        // Garbage that is not even a header.
        fs::write(dir.join("ckpt-garbage.psmr"), b"not a snapshot").unwrap();
        let failures_before = global().value(counters::SNAPSHOT_LOAD_FAILURES);
        let latest = store.load_latest().expect("the good file survives");
        assert_eq!(latest.checkpoint, good);
        assert!(global().value(counters::SNAPSHOT_LOAD_FAILURES) >= failures_before + 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The corruption-fallback contract: when the *newest* persisted
    /// checkpoint is truncated on disk, a restart falls back to the
    /// next-older valid file instead of erroring (or trusting garbage).
    #[test]
    fn truncated_newest_falls_back_to_the_older_checkpoint() {
        let dir = unique_dir("truncated-newest");
        let store = DurableStore::open(&dir).unwrap();
        let older = ckpt(1, 5, vec![1; 128]);
        store.persist(&older, 3, &[]).unwrap();
        let newest_path = store.persist(&ckpt(2, 9, vec![2; 128]), 3, &[]).unwrap();
        // Tear the newest file as a crashed write would.
        let bytes = fs::read(&newest_path).unwrap();
        fs::write(&newest_path, &bytes[..bytes.len() / 2]).unwrap();

        let loaded = store.load_latest().expect("older checkpoint survives");
        assert_eq!(loaded.checkpoint, older);
        assert_eq!(loaded.epoch, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Same fallback for a bit flip anywhere in the newest file's body.
    #[test]
    fn bit_flipped_newest_falls_back_to_the_older_checkpoint() {
        let dir = unique_dir("bitflip-newest");
        let store = DurableStore::open(&dir).unwrap();
        let older = ckpt(1, 5, vec![1; 64]);
        store.persist(&older, 0, &[]).unwrap();
        let newest_path = store.persist(&ckpt(2, 9, vec![2; 64]), 0, &[]).unwrap();
        let mut bytes = fs::read(&newest_path).unwrap();
        let mid = HEADER_LEN + 32;
        bytes[mid] ^= 0x01;
        fs::write(&newest_path, &bytes).unwrap();

        let loaded = store.load_latest().expect("older checkpoint survives");
        assert_eq!(loaded.checkpoint, older);
        // load_all exposes the full candidate list, newest valid first.
        let all = store.load_all();
        assert_eq!(all.len(), 1, "the corrupt file is not a candidate");
        assert_eq!(all[0].checkpoint.id, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_all_orders_candidates_newest_cut_first() {
        let dir = unique_dir("load-all");
        let store = DurableStore::open(&dir).unwrap();
        for (id, seq) in [(2u64, 20u64), (1, 10), (3, 30)] {
            store
                .persist(&ckpt(id, seq, vec![id as u8]), 0, &[])
                .unwrap();
        }
        let ids: Vec<u64> = store.load_all().iter().map(|d| d.checkpoint.id).collect();
        assert_eq!(ids, vec![3, 2, 1]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_stray_tmp_file_is_invisible() {
        let dir = unique_dir("tmp");
        let store = DurableStore::open(&dir).unwrap();
        // A crash between write and rename leaves only the .tmp behind.
        fs::write(
            dir.join("ckpt-00000000000000000001.psmr.tmp"),
            encode(&ckpt(1, 5, vec![1]), 0, &[]),
        )
        .unwrap();
        assert!(store.load_latest().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retain_newest_prunes_old_files() {
        let dir = unique_dir("retain");
        let store = DurableStore::open(&dir).unwrap();
        for id in 1..=5 {
            store
                .persist(&ckpt(id, id * 10, vec![id as u8]), 0, &[])
                .unwrap();
        }
        assert_eq!(store.retain_newest(2).unwrap(), 3);
        let latest = store.load_latest().expect("newest kept");
        assert_eq!(latest.checkpoint.id, 5);
        assert_eq!(store.retain_newest(2).unwrap(), 0, "idempotent");
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The remap overlay table rides the snapshot file: it round-trips
    /// through persist/load and sits under the same crc as the body.
    #[test]
    fn table_round_trips_and_is_crc_protected() {
        let dir = unique_dir("table");
        let store = DurableStore::open(&dir).unwrap();
        let table = vec![0xAB; 37];
        let path = store
            .persist(&ckpt(1, 5, vec![1, 2, 3]), 4, &table)
            .unwrap();
        let loaded = store.load_latest().expect("persisted");
        assert_eq!(loaded.table, table);
        assert_eq!(loaded.epoch, 4);
        assert_eq!(loaded.checkpoint.snapshot, vec![1, 2, 3]);
        // Flip one table byte: the whole file must be rejected, not
        // loaded with a silently-wrong routing overlay.
        let mut bytes = fs::read(&path).unwrap();
        bytes[HEADER_LEN + 10] ^= 0x04;
        fs::write(&path, bytes).unwrap();
        assert!(store.load_latest().is_none(), "corrupt table rejected");
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Files written by the pre-table v1 layout still load — with an
    /// empty table, the correct value for their era (remap state was not
    /// persisted at all).
    #[test]
    fn v1_files_decode_with_an_empty_table() {
        let body = vec![6u8; 16];
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC);
        v1.extend_from_slice(&VERSION_V1.to_le_bytes());
        v1.extend_from_slice(&3u64.to_le_bytes()); // id
        v1.extend_from_slice(&4u64.to_le_bytes()); // cut.group
        v1.extend_from_slice(&9u64.to_le_bytes()); // cut.seq
        v1.extend_from_slice(&1u64.to_le_bytes()); // cut.offset
        v1.extend_from_slice(&5u64.to_le_bytes()); // epoch
        v1.extend_from_slice(&(body.len() as u64).to_le_bytes());
        v1.extend_from_slice(&crc32(&body).to_le_bytes());
        v1.extend_from_slice(&body);
        let loaded = decode(&v1).expect("v1 layout stays loadable");
        assert_eq!(loaded.checkpoint.id, 3);
        assert_eq!(loaded.checkpoint.cut.seq, 9);
        assert_eq!(loaded.checkpoint.snapshot, body);
        assert_eq!(loaded.epoch, 5);
        assert_eq!(loaded.table, Vec::<u8>::new());
    }

    #[test]
    fn truncated_header_and_wrong_version_are_rejected() {
        assert_eq!(decode(b"PSMRSNAP"), None);
        let mut bytes = encode(&ckpt(1, 1, vec![1]), 0, &[]);
        bytes[8] = 99; // version
        assert_eq!(decode(&bytes), None);
        let ok = encode(&ckpt(1, 1, vec![1]), 0, &[]);
        assert_eq!(decode(&ok[..ok.len() - 1]), None, "truncated body");
    }
}
