//! Peer-to-peer state transfer.
//!
//! A restarting replica fetches the latest checkpoint from a **live
//! peer** instead of a shared in-process store — the way the paper's
//! Multi-Ring Paxos deployments actually recover. The wire protocol runs
//! over the same [`LiveNet`] substrate as everything else in this
//! reproduction (one channel hop stands in for a cluster link):
//!
//! ```text
//! fetcher                         serving peer
//!    │ ───────── Fetch ──────────────▶ │
//!    │ ◀──────── Offer ─────────────── │  id, cut, epoch, remap table,
//!    │ ◀──────── Chunk 0 ───────────── │  total length, chunk count,
//!    │ ◀──────── Chunk 1 ───────────── │  digest
//!    │            …                    │
//!    │ ◀──────── Chunk n-1 ─────────── │
//! ```
//!
//! The **offer is the remap-epoch handshake**: it carries the epoch (and
//! encoded overlay table) currently in force at the serving peer, so a
//! replica that checkpointed under an old C-Dep mapping learns the
//! current one before it re-subscribes its worker streams. Snapshots are
//! streamed in chunks and verified against an end-to-end digest; a peer
//! that crashes mid-transfer shows up as a per-message timeout and the
//! fetcher **falls back to the next peer**.
//!
//! A [`TransferMsg::Probe`] requests the offer **without** the chunks —
//! the handshake alone, for disk-first recoveries that may never need
//! the bytes ([`probe_latest`]).

use crate::{Checkpoint, StreamCut};
use psmr_common::metrics::{counters, global};
use psmr_common::runtime::{recv_timeout_via, Clock, RealClock};
use psmr_netsim::live::LiveNet;
use psmr_netsim::NodeId;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often a serving peer's loop re-checks its stop flag while idle.
const SERVE_POLL: Duration = Duration::from_millis(10);

/// The message network state transfer runs over.
pub type TransferNet = LiveNet<TransferMsg>;

/// Wire protocol of a state transfer (see the module-level diagram).
#[derive(Debug, Clone)]
pub enum TransferMsg {
    /// Fetcher → peer: send me your latest checkpoint.
    Fetch,
    /// Fetcher → peer: send me your latest checkpoint's **manifest
    /// only** (an [`TransferMsg::Offer`] with no chunks following) — the
    /// remap-epoch handshake without moving snapshot bytes. Used by
    /// disk-first recoveries that may never need the transfer itself.
    Probe,
    /// Peer → fetcher: the transfer manifest and remap-epoch handshake;
    /// `chunks` chunk messages follow.
    Offer {
        /// Checkpoint number of the offered snapshot.
        id: u64,
        /// Stream position the snapshot was cut at.
        cut: StreamCut,
        /// Remap epoch currently in force at the serving peer.
        epoch: u64,
        /// Encoded remap overlay table for that epoch (empty when the
        /// deployment routes with a fixed C-G).
        table: Vec<u8>,
        /// Total snapshot length in bytes.
        len: u64,
        /// Number of chunk messages that follow.
        chunks: u32,
        /// FNV-1a 64-bit digest of the complete snapshot.
        digest: u64,
    },
    /// Peer → fetcher: one snapshot chunk, in order.
    Chunk {
        /// Chunk index in `0..chunks`.
        index: u32,
        /// The chunk's bytes.
        bytes: Vec<u8>,
    },
    /// Peer → fetcher: the peer is alive but has no checkpoint yet.
    NotFound,
}

/// What a serving peer hands to its [`StateTransferServer`]: the latest
/// checkpoint it holds and the remap epoch currently in force.
pub trait TransferSource: Send + Sync {
    /// The newest checkpoint this peer can serve, if any.
    fn latest(&self) -> Option<Checkpoint>;

    /// The remap epoch in force and its encoded overlay table (epoch 0
    /// with an empty table for fixed C-G deployments).
    fn epoch_table(&self) -> (u64, Vec<u8>);
}

/// FNV-1a 64-bit digest — the end-to-end integrity check of a transfer.
pub fn digest64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Why a fetch found no usable peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferError {
    /// The peer list was empty — nobody to fetch from.
    NoPeers,
    /// Every peer either timed out, crashed mid-transfer, failed the
    /// digest check, or had no checkpoint to offer.
    AllPeersFailed {
        /// How many peers were attempted.
        attempted: usize,
    },
}

impl fmt::Display for TransferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferError::NoPeers => write!(f, "no live peer to fetch state from"),
            TransferError::AllPeersFailed { attempted } => {
                write!(f, "state transfer failed on all {attempted} peers")
            }
        }
    }
}

impl std::error::Error for TransferError {}

/// A completed fetch: the checkpoint plus everything the handshake
/// taught us.
#[derive(Debug, Clone)]
pub struct FetchedState {
    /// The transferred (digest-verified) checkpoint.
    pub checkpoint: Checkpoint,
    /// Remap epoch in force at the serving peer.
    pub epoch: u64,
    /// Encoded remap overlay table for that epoch (empty = fixed C-G).
    pub table: Vec<u8>,
    /// The peer that served the transfer.
    pub from: NodeId,
    /// Peers given up on before this one served (timeouts, digest
    /// mismatches, mid-transfer crashes).
    pub fallbacks: u64,
}

/// One replica's serving half: a thread answering [`TransferMsg::Fetch`]
/// requests with the replica's latest checkpoint, chunked.
///
/// Spawned per live replica; stopped (and its node crashed on the
/// transfer network) when the replica crashes, so fetchers see dead
/// peers as silence, not errors.
#[derive(Debug)]
pub struct StateTransferServer {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl StateTransferServer {
    /// Spawns the serving thread: registers `node` on `net` and answers
    /// every fetch from `source`, `chunk_bytes` per chunk message.
    pub fn spawn(
        net: TransferNet,
        node: NodeId,
        source: Arc<dyn TransferSource>,
        chunk_bytes: usize,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let chunk_bytes = chunk_bytes.max(1);
        let inbox = net.register(node);
        let thread = std::thread::Builder::new()
            .name(format!("xfer-serve-{}", node.as_raw()))
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    let (from, msg) = match inbox.recv_timeout(SERVE_POLL) {
                        Ok(received) => received,
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                    };
                    match msg {
                        TransferMsg::Fetch => {
                            serve_one(&net, node, from, &*source, chunk_bytes, true)
                        }
                        TransferMsg::Probe => {
                            serve_one(&net, node, from, &*source, chunk_bytes, false)
                        }
                        _ => {}
                    }
                }
            })
            .expect("spawn state-transfer server");
        Self {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the serving thread and joins it.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for StateTransferServer {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Answers one fetch (offer, then the chunks) or probe (offer only).
fn serve_one(
    net: &TransferNet,
    me: NodeId,
    fetcher: NodeId,
    source: &dyn TransferSource,
    chunk_bytes: usize,
    stream_chunks: bool,
) {
    let Some(checkpoint) = source.latest() else {
        net.send(me, fetcher, TransferMsg::NotFound);
        return;
    };
    let (epoch, table) = source.epoch_table();
    let snapshot = &checkpoint.snapshot;
    let chunks = snapshot.len().div_ceil(chunk_bytes).max(1) as u32;
    let offer = TransferMsg::Offer {
        id: checkpoint.id,
        cut: checkpoint.cut,
        epoch,
        table,
        len: snapshot.len() as u64,
        chunks,
        digest: digest64(snapshot),
    };
    if !net.send(me, fetcher, offer) || !stream_chunks {
        return; // probe done, or fetcher gone mid-transfer
    }
    global().counter(counters::TRANSFERS_SERVED).inc();
    for (index, chunk) in snapshot.chunks(chunk_bytes).enumerate() {
        let msg = TransferMsg::Chunk {
            index: index as u32,
            bytes: chunk.to_vec(),
        };
        if !net.send(me, fetcher, msg) {
            return;
        }
        global().counter(counters::TRANSFER_CHUNKS_SENT).inc();
    }
    if snapshot.is_empty() {
        // Zero-length snapshots still send their one (empty) chunk so the
        // fetcher's receive loop has something to terminate on.
        net.send(
            me,
            fetcher,
            TransferMsg::Chunk {
                index: 0,
                bytes: Vec::new(),
            },
        );
        global().counter(counters::TRANSFER_CHUNKS_SENT).inc();
    }
}

/// Fetches the latest checkpoint from the first peer that completes a
/// digest-verified transfer, trying `peers` in order.
///
/// `me` is registered on `net` with a fresh inbox (stale traffic from a
/// previous incarnation is gone). Each protocol message is awaited for
/// at most `timeout`; a peer that exceeds it — crashed outright, or died
/// mid-chunk-stream — is abandoned and the next peer tried.
///
/// # Errors
///
/// [`TransferError::NoPeers`] when `peers` is empty;
/// [`TransferError::AllPeersFailed`] when every peer was tried without a
/// verified transfer.
pub fn fetch_latest(
    net: &TransferNet,
    me: NodeId,
    peers: &[NodeId],
    timeout: Duration,
) -> Result<FetchedState, TransferError> {
    fetch_latest_via(&RealClock, net, me, peers, timeout)
}

/// [`fetch_latest`] with every per-message timeout interpreted in
/// `clock`'s timebase — the variant deterministic-simulation harnesses
/// inject a virtual clock into.
pub fn fetch_latest_via(
    clock: &dyn Clock,
    net: &TransferNet,
    me: NodeId,
    peers: &[NodeId],
    timeout: Duration,
) -> Result<FetchedState, TransferError> {
    if peers.is_empty() {
        return Err(TransferError::NoPeers);
    }
    let inbox = net.register(me);
    let mut fallbacks = 0u64;
    for &peer in peers {
        match fetch_from(clock, net, &inbox, me, peer, timeout) {
            Some(mut fetched) => {
                fetched.fallbacks = fallbacks;
                global().counter(counters::TRANSFERS_COMPLETED).inc();
                return Ok(fetched);
            }
            None => {
                fallbacks += 1;
                global().counter(counters::TRANSFER_FALLBACKS).inc();
            }
        }
    }
    Err(TransferError::AllPeersFailed {
        attempted: peers.len(),
    })
}

/// One attempt against one peer; `None` on timeout, digest mismatch,
/// `NotFound`, or protocol confusion.
fn fetch_from(
    clock: &dyn Clock,
    net: &TransferNet,
    inbox: &crossbeam::channel::Receiver<(NodeId, TransferMsg)>,
    me: NodeId,
    peer: NodeId,
    timeout: Duration,
) -> Option<FetchedState> {
    if !net.send(me, peer, TransferMsg::Fetch) {
        return None; // peer already known-dead
    }
    // Await the offer, ignoring stragglers from previously abandoned peers.
    let (id, cut, epoch, table, len, chunks, digest) = loop {
        match recv_timeout_via(clock, inbox, timeout) {
            Ok((
                from,
                TransferMsg::Offer {
                    id,
                    cut,
                    epoch,
                    table,
                    len,
                    chunks,
                    digest,
                },
            )) if from == peer => break (id, cut, epoch, table, len, chunks, digest),
            Ok((from, TransferMsg::NotFound)) if from == peer => return None,
            Ok(_) => continue, // stale message from an abandoned peer
            Err(_) => return None,
        }
    };
    let mut snapshot = Vec::with_capacity(usize::try_from(len).ok()?);
    let mut next = 0u32;
    while next < chunks {
        match recv_timeout_via(clock, inbox, timeout) {
            Ok((from, TransferMsg::Chunk { index, bytes })) if from == peer => {
                if index != next {
                    return None; // protocol violation; don't guess
                }
                snapshot.extend_from_slice(&bytes);
                next += 1;
            }
            Ok(_) => continue,
            Err(_) => return None, // peer died mid-transfer
        }
    }
    if snapshot.len() as u64 != len || digest64(&snapshot) != digest {
        return None;
    }
    Some(FetchedState {
        checkpoint: Checkpoint { id, cut, snapshot },
        epoch,
        table,
        from: peer,
        fallbacks: 0,
    })
}

/// The manifest a probe learned: everything an [`TransferMsg::Offer`]
/// carries except the snapshot bytes themselves.
#[derive(Debug, Clone)]
pub struct ProbedState {
    /// Checkpoint number of the peer's newest checkpoint.
    pub id: u64,
    /// Stream position that checkpoint was cut at.
    pub cut: StreamCut,
    /// Remap epoch in force at the serving peer.
    pub epoch: u64,
    /// Encoded remap overlay table for that epoch (empty = fixed C-G).
    pub table: Vec<u8>,
    /// The peer that answered.
    pub from: NodeId,
}

/// Asks peers (in order) for their newest checkpoint's **manifest
/// only** — the remap-epoch handshake without moving snapshot bytes.
/// Counters are untouched: a probe is not a transfer.
///
/// # Errors
///
/// [`TransferError::NoPeers`] when `peers` is empty;
/// [`TransferError::AllPeersFailed`] when no peer answered with an
/// offer (dead, timed out, or nothing checkpointed yet).
pub fn probe_latest(
    net: &TransferNet,
    me: NodeId,
    peers: &[NodeId],
    timeout: Duration,
) -> Result<ProbedState, TransferError> {
    probe_latest_via(&RealClock, net, me, peers, timeout)
}

/// [`probe_latest`] with the per-message timeout interpreted in
/// `clock`'s timebase (see [`fetch_latest_via`]).
pub fn probe_latest_via(
    clock: &dyn Clock,
    net: &TransferNet,
    me: NodeId,
    peers: &[NodeId],
    timeout: Duration,
) -> Result<ProbedState, TransferError> {
    if peers.is_empty() {
        return Err(TransferError::NoPeers);
    }
    let inbox = net.register(me);
    for &peer in peers {
        if !net.send(me, peer, TransferMsg::Probe) {
            continue; // peer already known-dead
        }
        loop {
            match recv_timeout_via(clock, &inbox, timeout) {
                Ok((
                    from,
                    TransferMsg::Offer {
                        id,
                        cut,
                        epoch,
                        table,
                        ..
                    },
                )) if from == peer => {
                    return Ok(ProbedState {
                        id,
                        cut,
                        epoch,
                        table,
                        from: peer,
                    })
                }
                Ok((from, TransferMsg::NotFound)) if from == peer => break,
                Ok(_) => continue, // straggler from an abandoned peer
                Err(_) => break,
            }
        }
    }
    Err(TransferError::AllPeersFailed {
        attempted: peers.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CheckpointStore;
    use psmr_common::ids::GroupId;

    struct StoreSource {
        store: CheckpointStore,
        epoch: u64,
    }

    impl TransferSource for StoreSource {
        fn latest(&self) -> Option<Checkpoint> {
            self.store.latest()
        }

        fn epoch_table(&self) -> (u64, Vec<u8>) {
            (self.epoch, vec![self.epoch as u8])
        }
    }

    fn cut(seq: u64) -> StreamCut {
        StreamCut {
            group: GroupId::new(2),
            seq,
            offset: 0,
        }
    }

    fn source(epoch: u64, snapshot: Option<Vec<u8>>) -> Arc<StoreSource> {
        let store = CheckpointStore::new();
        if let Some(snapshot) = snapshot {
            store.install(cut(3), 1, snapshot);
        }
        Arc::new(StoreSource { store, epoch })
    }

    fn n(i: u64) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn digest64_is_stable_and_input_sensitive() {
        assert_eq!(digest64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(digest64(b"a"), digest64(b"b"));
        assert_eq!(digest64(b"abc"), digest64(b"abc"));
    }

    #[test]
    fn fetch_transfers_a_chunked_snapshot_with_handshake() {
        let net: TransferNet = LiveNet::new();
        let snapshot: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let server =
            StateTransferServer::spawn(net.clone(), n(0), source(4, Some(snapshot.clone())), 512);
        let fetched = fetch_latest(&net, n(9), &[n(0)], Duration::from_secs(2)).expect("transfer");
        assert_eq!(fetched.checkpoint.snapshot, snapshot);
        assert_eq!(fetched.checkpoint.id, 1);
        assert_eq!(fetched.checkpoint.cut, cut(3));
        assert_eq!(fetched.epoch, 4, "handshake carries the epoch");
        assert_eq!(fetched.table, vec![4], "…and the encoded table");
        assert_eq!(fetched.from, n(0));
        assert_eq!(fetched.fallbacks, 0);
        server.stop();
    }

    #[test]
    fn empty_and_tiny_snapshots_transfer() {
        let net: TransferNet = LiveNet::new();
        let server =
            StateTransferServer::spawn(net.clone(), n(0), source(0, Some(Vec::new())), 512);
        let fetched = fetch_latest(&net, n(9), &[n(0)], Duration::from_secs(2)).expect("transfer");
        assert!(fetched.checkpoint.snapshot.is_empty());
        server.stop();
    }

    #[test]
    fn fetch_with_no_peers_is_a_typed_error() {
        let net: TransferNet = LiveNet::new();
        assert_eq!(
            fetch_latest(&net, n(9), &[], Duration::from_millis(10)).unwrap_err(),
            TransferError::NoPeers
        );
    }

    #[test]
    fn dead_peer_falls_back_to_the_next_one() {
        let net: TransferNet = LiveNet::new();
        // Peer 0 is registered then crashes; peer 1 serves.
        let _dead_inbox = net.register(n(0));
        net.crash(n(0));
        let server =
            StateTransferServer::spawn(net.clone(), n(1), source(0, Some(vec![5; 100])), 16);
        let fetched =
            fetch_latest(&net, n(9), &[n(0), n(1)], Duration::from_millis(200)).expect("fallback");
        assert_eq!(fetched.from, n(1));
        assert_eq!(fetched.fallbacks, 1);
        server.stop();
    }

    #[test]
    fn peer_crashing_mid_transfer_falls_back() {
        let net: TransferNet = LiveNet::new();
        let snapshot = vec![7u8; 4096];
        let bad =
            StateTransferServer::spawn(net.clone(), n(0), source(0, Some(snapshot.clone())), 64);
        let good =
            StateTransferServer::spawn(net.clone(), n(1), source(0, Some(snapshot.clone())), 64);
        // Peer 0's link to the fetcher dies after the offer + 3 chunks.
        net.sever_after(n(0), n(9), 4);
        let fetched =
            fetch_latest(&net, n(9), &[n(0), n(1)], Duration::from_millis(150)).expect("fallback");
        assert_eq!(fetched.from, n(1), "completed on the fallback peer");
        assert_eq!(fetched.fallbacks, 1);
        assert_eq!(fetched.checkpoint.snapshot, snapshot);
        bad.stop();
        good.stop();
    }

    #[test]
    fn probe_learns_the_manifest_without_moving_bytes() {
        let net: TransferNet = LiveNet::new();
        let server =
            StateTransferServer::spawn(net.clone(), n(0), source(6, Some(vec![9; 4096])), 64);
        let probed =
            probe_latest(&net, n(9), &[n(0)], Duration::from_millis(300)).expect("probe answered");
        assert_eq!(probed.id, 1);
        assert_eq!(probed.cut, cut(3));
        assert_eq!(probed.epoch, 6);
        assert_eq!(probed.table, vec![6]);
        assert_eq!(probed.from, n(0));
        // No chunk follows a probe: the inbox stays silent.
        let inbox = net.register(n(9));
        assert!(
            inbox.recv_timeout(Duration::from_millis(60)).is_err(),
            "probe must not stream snapshot bytes"
        );
        // An empty peer answers NotFound; a dead list errors.
        let lonely: TransferNet = LiveNet::new();
        let empty = StateTransferServer::spawn(lonely.clone(), n(0), source(0, None), 64);
        assert_eq!(
            probe_latest(&lonely, n(9), &[n(0)], Duration::from_millis(150)).unwrap_err(),
            TransferError::AllPeersFailed { attempted: 1 }
        );
        assert_eq!(
            probe_latest(&lonely, n(9), &[], Duration::from_millis(10)).unwrap_err(),
            TransferError::NoPeers
        );
        empty.stop();
        server.stop();
    }

    #[test]
    fn peer_without_a_checkpoint_is_skipped() {
        let net: TransferNet = LiveNet::new();
        let empty = StateTransferServer::spawn(net.clone(), n(0), source(0, None), 64);
        let full = StateTransferServer::spawn(net.clone(), n(1), source(0, Some(vec![1, 2])), 64);
        let fetched =
            fetch_latest(&net, n(9), &[n(0), n(1)], Duration::from_millis(300)).expect("skip");
        assert_eq!(fetched.from, n(1));
        empty.stop();
        full.stop();

        let lonely: TransferNet = LiveNet::new();
        let empty = StateTransferServer::spawn(lonely.clone(), n(0), source(0, None), 64);
        assert_eq!(
            fetch_latest(&lonely, n(9), &[n(0)], Duration::from_millis(150)).unwrap_err(),
            TransferError::AllPeersFailed { attempted: 1 }
        );
        empty.stop();
    }
}
