//! # psmr-recovery — coordinated checkpointing and replica recovery
//!
//! The paper (§V of conf_icdcs_MarandiBP14) points out that parallel
//! SMR complicates checkpointing: with `k` workers delivering from `k`
//! different multicast streams, no single thread observes a total order
//! to cut the state at. P-SMR's answer — reused here — is to coordinate
//! the checkpoint **through the serialized group `g_all`**: a
//! [`CHECKPOINT`] control command is multicast like any globally
//! dependent command, so every worker of every replica quiesces at the
//! same consistent cut (the synchronous-mode barrier of Algorithm 1),
//! and the elected executor snapshots the service state alone.
//!
//! This crate hosts the engine-agnostic pieces of that machinery:
//!
//! * [`Snapshot`] — what a recoverable service implements on top of
//!   `Service` (serialize the full state, restore from it),
//! * [`StreamCut`] — the position of a checkpoint command inside the
//!   ordered stream that carried it; together with the deterministic
//!   merge rule this identifies the consistent cut for *every* worker,
//! * [`Checkpoint`] / [`CheckpointStore`] — the durable artifact and the
//!   deployment-wide store replicas recover from,
//! * [`AutoCheckpointer`] — a periodic driver submitting [`CHECKPOINT`]
//!   commands at the configured interval.
//!
//! Two further modules make recovery deployment-shaped instead of an
//! in-process fiction:
//!
//! * [`durable`] — [`DurableStore`]: checkpoints persisted to disk with
//!   atomic rename and crc-checked load, so a fully-restarted process
//!   recovers from its own directory,
//! * [`transfer`] — [`StateTransferServer`] / [`fetch_latest`]: a
//!   restarting replica pulls the latest checkpoint from a live peer in
//!   digest-verified chunks, learning the current remap epoch from the
//!   offer handshake and falling back to the next peer when one crashes
//!   mid-transfer.
//!
//! The engine-side halves (quiescing workers, replaying the
//! `(snapshot, log suffix)` pair into a restarted replica) live in
//! `psmr-core`; the ordered-log retention they rely on lives in
//! `psmr-paxos`.

#![warn(missing_docs)]

pub mod durable;
pub mod transfer;

pub use durable::{DurableCheckpoint, DurableStore};
pub use transfer::{
    fetch_latest, fetch_latest_via, probe_latest, probe_latest_via, FetchedState, ProbedState,
    StateTransferServer, TransferError, TransferMsg, TransferNet, TransferSource,
};

use parking_lot::Mutex;
use psmr_common::ids::{CommandId, GroupId};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The reserved control command that triggers a coordinated checkpoint.
///
/// Classified `Global` by every engine router: it travels on the
/// serialized group and synchronizes all workers, which is exactly the
/// quiescence checkpointing needs. Services must not declare their own
/// command with this id (the neighbouring `u32::MAX` is `REMAP`).
pub const CHECKPOINT: CommandId = CommandId::new(u32::MAX - 1);

/// Snapshot/restore extension of the `Service` abstraction.
///
/// Both methods take `&self`: services already use interior mutability
/// (their `execute` is `&self`), and `restore` is only invoked while the
/// replica's workers are not running. Snapshots must be **deterministic
/// encodings** — every replica snapshotting at the same cut must produce
/// byte-identical output, which also gives tests a cheap convergence
/// check.
pub trait Snapshot: Send + Sync {
    /// Serializes the complete service state.
    fn snapshot(&self) -> Vec<u8>;

    /// Replaces the service state with a previously taken snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`RestoreError`] if the bytes do not decode.
    fn restore(&self, snapshot: &[u8]) -> Result<(), RestoreError>;
}

impl<T: Snapshot + ?Sized> Snapshot for Arc<T> {
    fn snapshot(&self) -> Vec<u8> {
        (**self).snapshot()
    }

    fn restore(&self, snapshot: &[u8]) -> Result<(), RestoreError> {
        (**self).restore(snapshot)
    }
}

/// A malformed snapshot payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreError {
    /// What failed to decode.
    pub what: String,
}

impl RestoreError {
    /// Builds an error naming the malformed structure.
    pub fn new(what: impl Into<String>) -> Self {
        RestoreError { what: what.into() }
    }
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed snapshot: {}", self.what)
    }
}

impl std::error::Error for RestoreError {}

/// Encodes `u64 → u64` store state into the shared snapshot layout: entry
/// count followed by the pairs, which callers supply in ascending key
/// order so every replica emits identical bytes.
///
/// This is the one codec both B+-trees and the key-value service use —
/// their snapshots restore into each other.
pub fn encode_kv_pairs(pairs: &[(u64, u64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + pairs.len() * 16);
    out.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
    for (key, value) in pairs {
        out.extend_from_slice(&key.to_le_bytes());
        out.extend_from_slice(&value.to_le_bytes());
    }
    out
}

/// Decodes the layout produced by [`encode_kv_pairs`].
///
/// # Errors
///
/// Returns [`RestoreError`] on a truncated header or a length mismatch.
pub fn decode_kv_pairs(snapshot: &[u8]) -> Result<Vec<(u64, u64)>, RestoreError> {
    let count = u64::from_le_bytes(
        snapshot
            .get(0..8)
            .ok_or_else(|| RestoreError::new("kv snapshot header"))?
            .try_into()
            .expect("8-byte slice"),
    ) as usize;
    // Checked arithmetic: a corrupt header can claim usize::MAX entries,
    // and this path's contract is Err, never an overflow panic.
    let expected = count.checked_mul(16).and_then(|n| n.checked_add(8));
    if expected != Some(snapshot.len()) {
        return Err(RestoreError::new("kv snapshot length"));
    }
    let mut pairs = Vec::with_capacity(count);
    for i in 0..count {
        let at = 8 + i * 16;
        let key = u64::from_le_bytes(snapshot[at..at + 8].try_into().expect("8 bytes"));
        let value = u64::from_le_bytes(snapshot[at + 8..at + 16].try_into().expect("8 bytes"));
        pairs.push((key, value));
    }
    Ok(pairs)
}

/// The position of a delivered command inside the ordered stream that
/// carried it: `(group, batch sequence number, offset in batch)`.
///
/// For a [`CHECKPOINT`] delivered on the serialized group this pins the
/// consistent cut of **every** stream of the deployment, because the
/// deterministic merge interleaves batches round-by-round: when worker
/// `t_i` delivers `g_all` batch `seq` at `offset`, it has consumed its
/// per-worker stream `g_i` exactly through batch `seq`. A restarted
/// worker therefore resumes `g_i` at `seq + 1` and the cut's own group
/// at `seq`, skipping `offset + 1` commands of that first batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamCut {
    /// The group whose stream carried the checkpoint command.
    pub group: GroupId,
    /// Sequence number of the batch containing the command.
    pub seq: u64,
    /// Offset of the command within its batch.
    pub offset: usize,
}

impl StreamCut {
    /// Orders cuts by stream position (later batches/offsets are newer).
    pub fn is_newer_than(&self, other: &StreamCut) -> bool {
        (self.seq, self.offset) > (other.seq, other.offset)
    }
}

impl fmt::Display for StreamCut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}+{}", self.group, self.seq, self.offset)
    }
}

/// One coordinated checkpoint: a service snapshot tagged with the cut it
/// was taken at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Monotonically increasing checkpoint number (assigned on install).
    pub id: u64,
    /// Where in the serialized stream the checkpoint command sat.
    pub cut: StreamCut,
    /// The deterministic service-state encoding.
    pub snapshot: Vec<u8>,
}

/// Deployment-wide checkpoint repository.
///
/// Every replica executes the same [`CHECKPOINT`] commands at the same
/// cuts and produces identical snapshots, so one shared store per
/// deployment suffices: installs at an already-covered cut deduplicate,
/// and a replica that was down across several checkpoints still finds
/// the newest one here — the stand-in for fetching state from a live
/// peer during recovery.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    latest: Mutex<Option<Checkpoint>>,
}

impl CheckpointStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a checkpoint taken at `cut`, carrying the id the
    /// installing replica derived for it. Returns whether this call
    /// actually installed it — replicas race to install the same
    /// checkpoint, the first one wins, and the rest deduplicate.
    ///
    /// Ids are **not** assigned here: every replica counts the
    /// `CHECKPOINT` commands it executes (seeded at restart with the
    /// recovery checkpoint's id), so all replicas derive the same id for
    /// the same command deterministically — a lagging replica answers an
    /// old request with the same id the fast replicas already did, no
    /// matter how far behind it is.
    pub fn install(&self, cut: StreamCut, id: u64, snapshot: Vec<u8>) -> bool {
        let mut latest = self.latest.lock();
        match &*latest {
            Some(existing) if !cut.is_newer_than(&existing.cut) => false,
            _ => {
                *latest = Some(Checkpoint { id, cut, snapshot });
                true
            }
        }
    }

    /// The most recent checkpoint, if any was ever taken.
    pub fn latest(&self) -> Option<Checkpoint> {
        self.latest.lock().clone()
    }

    /// Number of the most recent checkpoint (0 when none).
    pub fn latest_id(&self) -> u64 {
        self.latest.lock().as_ref().map_or(0, |c| c.id)
    }
}

/// Errors surfaced by replica recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RecoveryError {
    /// No checkpoint exists to restart from.
    NoCheckpoint,
    /// The replica is not in a state that allows the operation (e.g.
    /// restarting a replica that was never crashed).
    NotCrashed,
    /// The referenced replica id is out of range.
    UnknownReplica {
        /// The out-of-range replica index.
        replica: usize,
    },
    /// The engine was spawned without recovery support.
    NotRecoverable,
    /// The ordered log no longer covers the checkpoint's cut (retention
    /// trimmed past it before the replica came back).
    LogTrimmed {
        /// The group whose log is short.
        group: GroupId,
        /// The first sequence number the recovery needed.
        needed: u64,
    },
    /// The recovery checkpoint's cut was trimmed out from under the
    /// restart (a concurrent checkpoint raced it) and no fresher
    /// recovery point could be obtained — the restart must be retried
    /// against a fresher source rather than looping on the stale cut.
    CutTrimmed {
        /// The cut whose log suffix disappeared mid-restart.
        cut: StreamCut,
    },
    /// Peer state transfer failed and no local snapshot could stand in.
    Transfer(transfer::TransferError),
    /// The snapshot bytes failed to decode.
    Restore(RestoreError),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::NoCheckpoint => write!(f, "no checkpoint to restart from"),
            RecoveryError::NotCrashed => write!(f, "replica is not crashed"),
            RecoveryError::UnknownReplica { replica } => {
                write!(f, "replica s{replica} is not part of this deployment")
            }
            RecoveryError::NotRecoverable => {
                write!(f, "engine was spawned without recovery support")
            }
            RecoveryError::LogTrimmed { group, needed } => {
                write!(f, "log of {group} trimmed past needed seq {needed}")
            }
            RecoveryError::CutTrimmed { cut } => {
                write!(f, "recovery cut {cut} was trimmed mid-restart; retry")
            }
            RecoveryError::Transfer(e) => write!(f, "{e}"),
            RecoveryError::Restore(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<RestoreError> for RecoveryError {
    fn from(e: RestoreError) -> Self {
        RecoveryError::Restore(e)
    }
}

impl From<transfer::TransferError> for RecoveryError {
    fn from(e: transfer::TransferError) -> Self {
        RecoveryError::Transfer(e)
    }
}

/// Periodically fires a checkpoint trigger (typically a closure that
/// multicasts a [`CHECKPOINT`] command) until stopped.
#[derive(Debug)]
pub struct AutoCheckpointer {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl AutoCheckpointer {
    /// Spawns the driver; `trigger` runs once per `interval`.
    pub fn spawn(interval: Duration, trigger: impl FnMut() + Send + 'static) -> Self {
        Self::spawn_with_clock(interval, Arc::new(psmr_common::runtime::RealClock), trigger)
    }

    /// [`AutoCheckpointer::spawn`] with the interval measured on an
    /// injected clock — under a virtual clock the driver fires when the
    /// test advances time, not when the host does.
    pub fn spawn_with_clock(
        interval: Duration,
        clock: psmr_common::runtime::ClockHandle,
        mut trigger: impl FnMut() + Send + 'static,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("auto-checkpoint".into())
            .spawn(move || {
                // Sleep in small slices so stop() returns promptly even
                // with long intervals.
                let slice = interval
                    .min(Duration::from_millis(20))
                    .max(Duration::from_micros(100));
                let mut elapsed = Duration::ZERO;
                while !stop_flag.load(Ordering::Relaxed) {
                    clock.sleep(slice);
                    elapsed += slice;
                    if elapsed >= interval {
                        elapsed = Duration::ZERO;
                        trigger();
                    }
                }
            })
            .expect("spawn auto-checkpointer");
        Self {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the driver and joins its thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for AutoCheckpointer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn cut(seq: u64, offset: usize) -> StreamCut {
        StreamCut {
            group: GroupId::new(2),
            seq,
            offset,
        }
    }

    #[test]
    fn store_installs_monotonically() {
        let store = CheckpointStore::new();
        assert_eq!(store.latest_id(), 0);
        assert!(store.latest().is_none());
        assert!(store.install(cut(3, 0), 1, vec![1]));
        // Same cut from the second replica: deduplicated.
        assert!(!store.install(cut(3, 0), 1, vec![1]));
        // Older cut never rolls back.
        assert!(!store.install(cut(2, 5), 9, vec![9]));
        assert_eq!(store.latest().expect("installed").snapshot, vec![1]);
        // Newer cut advances.
        assert!(store.install(cut(3, 1), 2, vec![2]));
        assert_eq!(store.latest_id(), 2);
    }

    #[test]
    fn cut_ordering_is_seq_then_offset() {
        assert!(cut(2, 0).is_newer_than(&cut(1, 9)));
        assert!(cut(1, 3).is_newer_than(&cut(1, 2)));
        assert!(!cut(1, 2).is_newer_than(&cut(1, 2)));
        assert_eq!(cut(1, 2).to_string(), "g2@1+2");
    }

    #[test]
    fn checkpoint_command_id_is_reserved_next_to_remap() {
        assert_eq!(CHECKPOINT.as_raw(), u32::MAX - 1);
    }

    #[test]
    fn auto_checkpointer_fires_and_stops() {
        let fired = Arc::new(AtomicU64::new(0));
        let probe = Arc::clone(&fired);
        let driver = AutoCheckpointer::spawn(Duration::from_millis(5), move || {
            probe.fetch_add(1, Ordering::Relaxed);
        });
        std::thread::sleep(Duration::from_millis(60));
        driver.stop();
        let count = fired.load(Ordering::Relaxed);
        assert!(count >= 2, "fired {count} times");
    }

    #[test]
    fn kv_codec_round_trips_and_rejects_corruption() {
        let pairs = vec![(1u64, 10u64), (2, 20), (9, 90)];
        let bytes = encode_kv_pairs(&pairs);
        assert_eq!(decode_kv_pairs(&bytes).expect("round trip"), pairs);
        assert_eq!(decode_kv_pairs(&encode_kv_pairs(&[])).unwrap(), vec![]);
        assert!(decode_kv_pairs(&[1, 2, 3]).is_err(), "truncated header");
        assert!(
            decode_kv_pairs(&bytes[..bytes.len() - 1]).is_err(),
            "truncated body"
        );
        // A corrupt header claiming usize::MAX entries must yield Err,
        // not an arithmetic-overflow panic.
        assert!(decode_kv_pairs(&[0xff; 8]).is_err(), "absurd count");
    }

    #[test]
    fn recovery_errors_display() {
        assert!(RecoveryError::NoCheckpoint
            .to_string()
            .contains("no checkpoint"));
        let e = RecoveryError::LogTrimmed {
            group: GroupId::new(1),
            needed: 7,
        };
        assert!(e.to_string().contains("g1"));
        let e: RecoveryError = RestoreError::new("kv pair count").into();
        assert!(e.to_string().contains("kv pair count"));
        let e = RecoveryError::CutTrimmed { cut: cut(4, 1) };
        assert!(e.to_string().contains("trimmed mid-restart"));
        let e: RecoveryError = transfer::TransferError::NoPeers.into();
        assert!(e.to_string().contains("no live peer"));
    }
}
