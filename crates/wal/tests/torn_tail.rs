//! Seeded torn-tail property test: arbitrary truncations and bit flips
//! on the tail segment must heal to a valid prefix on reopen.
//!
//! The crash model behind [`psmr_wal::Wal::replay`] is "the disk holds a
//! clean prefix of what was appended, followed by garbage" — a torn
//! write, a half-flushed page, a flipped bit. This test drives that
//! model with a seeded generator (same discipline as `psmr-sim`: the
//! whole case derives from the seed, so a failure line like
//! `seed 17, truncate at 113` reproduces exactly): build a log, corrupt
//! the tail segment at an arbitrary byte offset, and require that
//!
//! * `Wal::open` still succeeds,
//! * `replay()` returns an exact prefix of the pre-corruption records,
//! * the log accepts new appends at `next_seq()` after the heal, and a
//!   second replay returns `healed prefix + new appends` — the open
//!   truncated the garbage away instead of interleaving with it.

use bytes::Bytes;
use psmr_wal::{Wal, WalOptions, WalRecord};
use std::path::PathBuf;

/// splitmix64 — tiny, seedable, and good enough to scatter offsets.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Segment header length (`magic | version | first seq`) — corruption
/// offsets stay at or past this so the test exercises record healing,
/// not header rejection (a destroyed header is a different, louder
/// failure mode).
const HEADER_LEN: u64 = 20;

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("psmr-wal-torn-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small segments so multi-segment logs appear; fsync per append so the
/// baseline is fully durable before the test corrupts it.
fn opts() -> WalOptions {
    WalOptions {
        segment_bytes: 256,
        batch: 1,
    }
}

/// The newest (= highest first-seq) segment file: the tail.
fn tail_segment(dir: &PathBuf) -> PathBuf {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("wal dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "wal"))
        .collect();
    segments.sort();
    segments.pop().expect("at least one segment")
}

/// Builds a log of `records` seeded batches and returns the replay
/// baseline.
fn build_log(dir: &PathBuf, rng: &mut Rng, records: u64) -> Vec<WalRecord> {
    let wal = Wal::open(dir, opts()).expect("open fresh");
    for seq in 1..=records {
        let len = (rng.below(24) + 1) as usize;
        let body: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        wal.append(seq, &[Bytes::from(body)]).expect("append");
    }
    wal.sync().expect("sync");
    let baseline = wal.replay().expect("baseline replay");
    assert_eq!(baseline.len() as u64, records);
    baseline
}

enum Corruption {
    Truncate { at: u64 },
    BitFlip { at: u64, bit: u8 },
}

/// Applies a seeded corruption to the tail segment and describes it for
/// the failure message.
fn corrupt_tail(dir: &PathBuf, rng: &mut Rng) -> String {
    let tail = tail_segment(dir);
    let len = std::fs::metadata(&tail).expect("tail metadata").len();
    // A tail segment always has the header; corrupt past it when any
    // record bytes exist, else truncate mid-header is all there is to do.
    let corruption = if len > HEADER_LEN {
        let at = HEADER_LEN + rng.below(len - HEADER_LEN);
        if rng.below(2) == 0 {
            Corruption::Truncate { at }
        } else {
            Corruption::BitFlip {
                at,
                bit: (rng.below(8)) as u8,
            }
        }
    } else {
        Corruption::Truncate { at: len / 2 }
    };
    match corruption {
        Corruption::Truncate { at } => {
            let mut bytes = std::fs::read(&tail).expect("read tail");
            bytes.truncate(at as usize);
            std::fs::write(&tail, bytes).expect("write truncated tail");
            format!("truncate {} at byte {at} of {len}", tail.display())
        }
        Corruption::BitFlip { at, bit } => {
            let mut bytes = std::fs::read(&tail).expect("read tail");
            bytes[at as usize] ^= 1 << bit;
            std::fs::write(&tail, bytes).expect("write flipped tail");
            format!("flip bit {bit} at byte {at} of {len} in {}", tail.display())
        }
    }
}

#[test]
fn seeded_tail_corruption_always_heals_to_a_valid_prefix() {
    for seed in 0..48u64 {
        let mut rng = Rng(seed);
        let dir = unique_dir("prefix");
        let records = rng.below(40) + 4;
        let baseline = build_log(&dir, &mut rng, records);
        let what = corrupt_tail(&dir, &mut rng);
        let ctx = format!("seed {seed}: {what}");

        // Reopen over the corrupted directory: never an error, and the
        // replayed records are an exact prefix of the baseline.
        let wal = Wal::open(&dir, opts()).unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}"));
        let healed = wal
            .replay()
            .unwrap_or_else(|e| panic!("{ctx}: replay failed: {e}"));
        assert!(
            healed.len() <= baseline.len(),
            "{ctx}: replay invented records"
        );
        assert_eq!(
            healed[..],
            baseline[..healed.len()],
            "{ctx}: replay is not a prefix of the pre-corruption log"
        );

        // The healed log accepts appends exactly where the prefix ends …
        let next = wal.next_seq();
        assert_eq!(
            next,
            healed.len() as u64 + 1,
            "{ctx}: numbering must continue from the healed prefix"
        );
        let fresh = Bytes::from(format!("fresh-{seed}"));
        wal.append(next, std::slice::from_ref(&fresh))
            .unwrap_or_else(|e| panic!("{ctx}: append after heal failed: {e}"));
        wal.sync()
            .unwrap_or_else(|e| panic!("{ctx}: sync after heal failed: {e}"));
        drop(wal);

        // … and a second incarnation sees prefix + fresh append, with no
        // corrupted bytes resurfacing in between.
        let wal =
            Wal::open(&dir, opts()).unwrap_or_else(|e| panic!("{ctx}: re-reopen failed: {e}"));
        let replayed = wal
            .replay()
            .unwrap_or_else(|e| panic!("{ctx}: final replay failed: {e}"));
        assert_eq!(replayed.len(), healed.len() + 1, "{ctx}");
        assert_eq!(replayed[..healed.len()], healed[..], "{ctx}");
        let last = replayed.last().expect("appended record");
        assert_eq!(last.seq, next, "{ctx}");
        assert_eq!(last.commands, vec![fresh], "{ctx}");

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Repeated corruption rounds on one log: every heal is a prefix of the
/// previous state, so damage never compounds into an invalid log.
#[test]
fn repeated_corruption_rounds_never_compound() {
    let mut rng = Rng(0xC0FF_EE00);
    let dir = unique_dir("rounds");
    let mut expected = build_log(&dir, &mut rng, 24);
    for round in 0..12 {
        let what = corrupt_tail(&dir, &mut rng);
        let ctx = format!("round {round}: {what}");
        let wal = Wal::open(&dir, opts()).unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}"));
        let healed = wal
            .replay()
            .unwrap_or_else(|e| panic!("{ctx}: replay failed: {e}"));
        assert_eq!(
            healed[..],
            expected[..healed.len()],
            "{ctx}: heal must be a prefix of the previous state"
        );
        // Re-grow the tail so the next round has something to tear.
        let next = wal.next_seq();
        wal.append(next, &[Bytes::from(vec![round as u8; 9])])
            .unwrap_or_else(|e| panic!("{ctx}: regrow failed: {e}"));
        wal.sync()
            .unwrap_or_else(|e| panic!("{ctx}: sync failed: {e}"));
        expected = wal
            .replay()
            .unwrap_or_else(|e| panic!("{ctx}: re-baseline failed: {e}"));
        assert_eq!(expected.len(), healed.len() + 1, "{ctx}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
