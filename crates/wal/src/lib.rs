//! # psmr-wal — durable write-ahead log for the ordered delivery streams
//!
//! The recovery story of the paper (§V) rebuilds a replica from a
//! checkpoint plus the ordered-command suffix — which only works while
//! that suffix exists somewhere. This crate makes it durable: every
//! multicast group appends its decided batches to a [`Wal`], a
//! **segmented append-only log** on disk, so a deployment where *every*
//! replica crashes can still cold-start from
//! `(newest snapshot, WAL suffix)` with no live peer to fetch from.
//!
//! Design, in one screen:
//!
//! * **Records** are crc-framed: `len | crc32(body) | body`, where the
//!   body carries the batch's sequence number and its commands. A flipped
//!   bit or a torn write is detected by the frame, never trusted.
//! * **Group commit**: every append is `write`n immediately, but `fsync`
//!   is issued once per [`WalOptions::batch`] appends — one sync
//!   amortized over the window, the classic group-commit trade
//!   (`wal_appends / wal_fsyncs` in the metrics registry shows the
//!   achieved batch size). The durability window is the usual one:
//!   a *process* crash loses nothing (written records survive in the
//!   OS page cache), while a *power* failure can lose up to the open
//!   window — the appends since the last `fsync`. Set `batch` to 1 to
//!   close that window at fsync-per-append cost (`wal_overhead` in
//!   `psmr-bench` prices both).
//! * **Segments**: the log rotates to a fresh `seg-<firstseq>.wal` file
//!   once the active one exceeds [`WalOptions::segment_bytes`].
//!   [`Wal::trim_below`] reclaims space by **unlinking whole segments**
//!   that a checkpoint has made unreachable — no rewrite, no compaction.
//! * **Replay tolerates a torn tail**: a crash mid-append leaves a
//!   truncated final record; [`Wal::replay`] returns the clean prefix
//!   and drops the tail (counted under `wal_torn_tails`), and
//!   [`Wal::open`] truncates the file back to the valid prefix so new
//!   appends never interleave with garbage.
//!
//! The sequence numbers stored in the log are the decided-batch numbers
//! of `psmr-paxos`: contiguous from 1 within each group's stream, skips
//! included. A reopened log therefore tells the group exactly where its
//! stream left off ([`Wal::next_seq`]), letting a cold-started group
//! *continue* the old numbering — which is what keeps every
//! checkpoint's stream cut comparable across process incarnations.
//!
//! # Example
//!
//! ```
//! use bytes::Bytes;
//! use psmr_wal::{Wal, WalOptions};
//!
//! let dir = std::env::temp_dir().join("psmr-wal-doctest");
//! let _ = std::fs::remove_dir_all(&dir);
//! let wal = Wal::open(&dir, WalOptions::default()).unwrap();
//! wal.append(1, &[Bytes::from_static(b"cmd-a")]).unwrap();
//! wal.append(2, &[]).unwrap(); // an idle skip round
//! wal.sync().unwrap();
//! drop(wal);
//!
//! // A fresh process replays the ordered suffix.
//! let wal = Wal::open(&dir, WalOptions::default()).unwrap();
//! let records = wal.replay().unwrap();
//! assert_eq!(records.len(), 2);
//! assert_eq!(records[0].seq, 1);
//! assert_eq!(&records[0].commands[0][..], b"cmd-a");
//! assert_eq!(wal.next_seq(), 3, "the stream continues where it left off");
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![warn(missing_docs)]

use bytes::Bytes;
use parking_lot::Mutex;
use psmr_common::crc::crc32;
use psmr_common::metrics::{counters, global, ScopedHistogram};
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Callback invoked immediately before every commit `fsync`
/// ([`Wal::set_sync_hook`]). Boxed behind an `Arc` so the syncing
/// thread can call it without holding the hook lock.
pub type SyncHook = Arc<dyn Fn() + Send + Sync>;

/// Segment-file magic: identifies a P-SMR write-ahead-log segment.
const MAGIC: &[u8; 8] = b"PSMRWAL1";
/// On-disk layout version.
const VERSION: u32 = 1;
/// Segment header length: magic + version + first record seq.
const HEADER_LEN: usize = 8 + 4 + 8;
/// Record frame prefix length: body length + body crc.
const FRAME_LEN: usize = 4 + 4;
/// Upper bound accepted for one record body; anything larger is treated
/// as frame corruption rather than attempted as an allocation.
const MAX_BODY: usize = 256 * 1024 * 1024;

/// Tuning knobs of a [`Wal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalOptions {
    /// Rotate to a fresh segment once the active one exceeds this size.
    pub segment_bytes: usize,
    /// Group-commit window: one `fsync` per this many appends.
    pub batch: usize,
}

impl Default for WalOptions {
    /// 4 MiB segments, 16 appends per fsync — the [`psmr_common::SystemConfig`]
    /// defaults.
    fn default() -> Self {
        Self {
            segment_bytes: 4 * 1024 * 1024,
            batch: 16,
        }
    }
}

/// One decided batch as recovered from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The batch's 1-based position in its group's stream.
    pub seq: u64,
    /// The ordered commands of the batch (empty for a skip round).
    pub commands: Vec<Bytes>,
}

/// One on-disk segment: its covering range starts at `first_seq`; the
/// range ends where the next segment begins (or at the log's tail).
#[derive(Debug, Clone)]
struct Segment {
    first_seq: u64,
    path: PathBuf,
}

#[derive(Debug)]
struct Inner {
    /// Segments sorted by `first_seq`; the last one is the active tail.
    segments: Vec<Segment>,
    /// Append handle of the active segment (`None` until first append).
    active: Option<fs::File>,
    /// Bytes written to the active segment so far (header included).
    active_bytes: u64,
    /// Sequence number the next appended record must carry.
    next_seq: u64,
    /// Appends since the last fsync (the open group-commit window).
    unsynced: usize,
    /// Sequence number the record *after the last fsynced one* would
    /// carry — the durability watermark pipelined group commit publishes.
    synced_next_seq: u64,
    /// Bytes of the active segment covered by the last fsync (what
    /// [`Wal::discard_unsynced`] truncates back to).
    synced_bytes: u64,
    /// Lifetime appends through this handle (per-log view of the global
    /// `wal_appends` counter).
    appends: u64,
    /// Lifetime group-commit fsyncs through this handle (segment-seal
    /// syncs on rotation are not counted — they are not commit syncs).
    fsyncs: u64,
}

/// A segmented append-only write-ahead log. See the [module docs](self).
///
/// All methods take `&self`; the log is internally locked so the
/// ordering thread can append while other threads trim or inspect it.
pub struct Wal {
    dir: PathBuf,
    opts: WalOptions,
    inner: Mutex<Inner>,
    /// Where commit-`fsync` latencies are recorded once a deployment
    /// attaches its per-group histogram ([`Wal::observe_fsync`]).
    /// Separate from `opts`, which stays `Copy`.
    fsync_observer: Mutex<Option<ScopedHistogram>>,
    /// Invoked immediately before every commit `fsync` — the schedule
    /// point a deterministic-simulation harness hooks to observe (or
    /// perturb around) durability boundaries ([`Wal::set_sync_hook`]).
    sync_hook: Mutex<Option<SyncHook>>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("opts", &self.opts)
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

impl Wal {
    /// Opens (creating if needed) the log rooted at `dir`.
    ///
    /// Scans the existing segments, determines where the stream left off
    /// and **heals a torn tail**: if the newest segment ends in a
    /// truncated or corrupt record, the file is truncated back to its
    /// valid prefix (counted under `wal_torn_tails`) so new appends
    /// start on a clean frame boundary.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the directory cannot be created
    /// or the tail segment cannot be read or truncated.
    pub fn open(dir: impl Into<PathBuf>, opts: WalOptions) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let segments = segment_files(&dir);
        let (next_seq, active, active_bytes) = match segments.last() {
            None => (1, None, 0),
            Some(tail) => {
                let bytes = read_file(&tail.path)?;
                let parsed = parse_segment(&bytes, tail.first_seq);
                if parsed.torn {
                    global().counter(counters::WAL_TORN_TAILS).inc();
                }
                let mut file = fs::OpenOptions::new().append(true).open(&tail.path)?;
                if parsed.valid_len < HEADER_LEN {
                    // Even the header is unreadable: rewrite it so new
                    // appends land in a well-formed (if empty) segment.
                    file.set_len(0)?;
                    file.write_all(&segment_header(tail.first_seq))?;
                    (parsed.next_seq, Some(file), HEADER_LEN as u64)
                } else {
                    if (parsed.valid_len as u64) < bytes.len() as u64 {
                        file.set_len(parsed.valid_len as u64)?;
                    }
                    (parsed.next_seq, Some(file), parsed.valid_len as u64)
                }
            }
        };
        Ok(Self {
            dir,
            opts,
            inner: Mutex::new(Inner {
                segments,
                active,
                // What is on disk at open *is* the durable baseline: a
                // reopen starts with nothing in the unsynced window.
                synced_next_seq: next_seq,
                synced_bytes: active_bytes,
                active_bytes,
                next_seq,
                unsynced: 0,
                appends: 0,
                fsyncs: 0,
            }),
            fsync_observer: Mutex::new(None),
            sync_hook: Mutex::new(None),
        })
    }

    /// Attaches the histogram every **commit** `fsync`'s latency is
    /// recorded into (segment-seal syncs on rotation are not commit
    /// syncs and are not recorded). Deployments attach a per-group
    /// scoped histogram (`wal_fsync_ns{group=G}`) at spawn — the
    /// observed-sync-cost input an adaptive `wal_sync_pace` needs.
    pub fn observe_fsync(&self, histogram: ScopedHistogram) {
        *self.fsync_observer.lock() = Some(histogram);
    }

    /// Installs (or clears) the callback invoked immediately before
    /// every commit `fsync` — both the windowed sync inside
    /// [`Wal::append`] and explicit [`Wal::sync`] calls. A schedule
    /// exploration harness uses this as its durability yield point;
    /// production deployments leave it unset.
    pub fn set_sync_hook(&self, hook: Option<SyncHook>) {
        *self.sync_hook.lock() = hook;
    }

    /// Fires the installed sync hook, if any, without holding the hook
    /// lock across the call.
    fn fire_sync_hook(&self) {
        let hook = self.sync_hook.lock().clone();
        if let Some(hook) = hook {
            hook();
        }
    }

    /// Records one commit-fsync latency into the attached observer, if
    /// any.
    fn record_fsync(&self, started: Instant) {
        if let Some(observer) = self.fsync_observer.lock().as_ref() {
            observer.record(started.elapsed());
        }
    }

    /// The directory the log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence number the next appended record must carry — one past
    /// the last durable record, or the reopened stream's resume point.
    pub fn next_seq(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// First sequence number still covered by the log (equals
    /// [`Wal::next_seq`] when the log is empty).
    pub fn first_seq(&self) -> u64 {
        let inner = self.inner.lock();
        inner
            .segments
            .first()
            .map_or(inner.next_seq, |s| s.first_seq)
    }

    /// Number of on-disk segment files.
    pub fn segment_count(&self) -> usize {
        self.inner.lock().segments.len()
    }

    /// Appends one decided batch. The record is written to the active
    /// segment immediately; the `fsync` lands when the group-commit
    /// window ([`WalOptions::batch`]) fills, amortizing the sync cost.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidInput`] when `seq` is not the
    /// log's [`Wal::next_seq`] — the ordered stream must stay contiguous
    /// — or when the record body would exceed the frame size replay
    /// accepts (writing it would durably acknowledge a record the
    /// reader must classify as corruption); or the underlying error of
    /// a failed write/rotate/sync.
    pub fn append(&self, seq: u64, commands: &[Bytes]) -> io::Result<()> {
        let body_len = 8 + 8 + commands.iter().map(|c| 4 + c.len()).sum::<usize>();
        if body_len > MAX_BODY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("record body of {body_len} bytes exceeds the {MAX_BODY}-byte frame cap"),
            ));
        }
        let mut inner = self.inner.lock();
        if seq != inner.next_seq {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "append seq {seq} breaks contiguity (next is {})",
                    inner.next_seq
                ),
            ));
        }
        // Rotate (or create the first segment) before the record goes in,
        // so a segment's covering range always starts at its first record.
        let rotate = match &inner.active {
            None => true,
            Some(_) => inner.active_bytes >= self.opts.segment_bytes as u64,
        };
        if rotate {
            if let Some(old) = inner.active.take() {
                // A closed segment is sealed durable before the log moves
                // on; replay never finds a torn record behind the tail.
                old.sync_all()?;
                inner.unsynced = 0;
                inner.synced_next_seq = inner.next_seq;
            }
            let path = self.dir.join(format!("seg-{seq:020}.wal"));
            let mut file = fs::OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(&path)?;
            file.write_all(&segment_header(seq))?;
            // The new directory entry must reach disk too: fsyncing the
            // file alone leaves the segment itself able to vanish in a
            // power failure, losing far more than the group-commit
            // window.
            sync_dir(&self.dir)?;
            inner.segments.push(Segment {
                first_seq: seq,
                path,
            });
            inner.active = Some(file);
            inner.active_bytes = HEADER_LEN as u64;
            // The fresh header survives a discard: truncating back to it
            // leaves a valid, empty segment.
            inner.synced_bytes = HEADER_LEN as u64;
            global().counter(counters::WAL_SEGMENTS_CREATED).inc();
        }
        let frame = encode_record(seq, commands);
        let file = inner.active.as_mut().expect("active segment exists");
        file.write_all(&frame)?;
        inner.active_bytes += frame.len() as u64;
        inner.next_seq = seq + 1;
        inner.unsynced += 1;
        inner.appends += 1;
        global().counter(counters::WAL_APPENDS).inc();
        if inner.unsynced >= self.opts.batch {
            self.fire_sync_hook();
            let sync_started = Instant::now();
            inner.active.as_ref().expect("active").sync_all()?;
            self.record_fsync(sync_started);
            inner.unsynced = 0;
            inner.synced_next_seq = inner.next_seq;
            inner.synced_bytes = inner.active_bytes;
            inner.fsyncs += 1;
            global().counter(counters::WAL_FSYNCS).inc();
        }
        Ok(())
    }

    /// Lifetime appends through this handle.
    pub fn append_count(&self) -> u64 {
        self.inner.lock().appends
    }

    /// Lifetime group-commit `fsync`s through this handle.
    pub fn fsync_count(&self) -> u64 {
        self.inner.lock().fsyncs
    }

    /// Forces the open group-commit window to disk (no-op when every
    /// appended record is already synced).
    ///
    /// The `fsync` itself runs **outside the log's lock**: appends keep
    /// flowing while the sync is in flight, which is what lets a
    /// pipelined sync thread group-commit without stalling the ordering
    /// thread. The durability markers are published afterwards and only
    /// ever move forward, so a rotation racing the sync cannot regress
    /// them.
    ///
    /// # Errors
    ///
    /// Returns the underlying `fsync` error.
    pub fn sync(&self) -> io::Result<()> {
        // Snapshot the open window under the lock; fsync outside it.
        let (file, covered_seq, covered_bytes, covered_segment) = {
            let inner = self.inner.lock();
            if inner.unsynced == 0 {
                return Ok(());
            }
            let file = inner
                .active
                .as_ref()
                .expect("unsynced implies active")
                .try_clone()?;
            (
                file,
                inner.next_seq,
                inner.active_bytes,
                inner.segments.len(),
            )
        };
        self.fire_sync_hook();
        let sync_started = Instant::now();
        file.sync_all()?;
        self.record_fsync(sync_started);
        let mut inner = self.inner.lock();
        if covered_seq > inner.synced_next_seq {
            inner.synced_next_seq = covered_seq;
            // A rotation may have swapped the active segment while the
            // fsync ran; its seal already published the old segment, and
            // the new segment's byte marker must not be overwritten with
            // the old file's length.
            if inner.segments.len() == covered_segment {
                inner.synced_bytes = covered_bytes;
            }
            inner.fsyncs += 1;
            global().counter(counters::WAL_FSYNCS).inc();
        }
        // Records appended while the fsync ran stay in the open window.
        inner.unsynced = (inner.next_seq - inner.synced_next_seq) as usize;
        Ok(())
    }

    /// Sequence number the record after the **last fsynced** one would
    /// carry — the per-log durability watermark. Records with
    /// `seq < durable_next_seq()` survive a power failure; the window
    /// `durable_next_seq()..next_seq()` is written but not yet covered
    /// by an `fsync`.
    pub fn durable_next_seq(&self) -> u64 {
        self.inner.lock().synced_next_seq
    }

    /// **Power-failure fault injection**: drops the open group-commit
    /// window by truncating the active segment back to its last fsynced
    /// length, exactly what a power cut would do to the unsynced tail.
    /// Returns how many appended records were discarded. Crash-recovery
    /// tests use this to turn an in-process "crash" (where the page
    /// cache, and thus every written byte, survives) into the power-loss
    /// model the durability watermark defends against.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the active segment cannot be
    /// truncated.
    pub fn discard_unsynced(&self) -> io::Result<u64> {
        let mut inner = self.inner.lock();
        let discarded = inner.next_seq - inner.synced_next_seq;
        if discarded == 0 {
            return Ok(0);
        }
        let synced_bytes = inner.synced_bytes;
        inner
            .active
            .as_ref()
            .expect("unsynced records imply an active segment")
            .set_len(synced_bytes)?;
        inner.active_bytes = synced_bytes;
        inner.next_seq = inner.synced_next_seq;
        inner.unsynced = 0;
        Ok(discarded)
    }

    /// Reclaims segments whose **every** record has `seq < below` by
    /// unlinking them — called once a checkpoint covers that prefix.
    /// The tail segment is never removed (it carries the stream's resume
    /// point), so trimming is at segment granularity: a recovery may
    /// replay a little more than it strictly needs, never less. Returns
    /// how many segment files were removed.
    ///
    /// # Errors
    ///
    /// Returns the first deletion error; earlier deletions stick.
    pub fn trim_below(&self, below: u64) -> io::Result<usize> {
        let mut inner = self.inner.lock();
        let mut removed = 0;
        // segments[0] is fully below the cut iff the next segment starts
        // at or before it — its range ends where segments[1] begins.
        while inner.segments.len() >= 2 && inner.segments[1].first_seq <= below {
            let victim = inner.segments.remove(0);
            fs::remove_file(&victim.path)?;
            removed += 1;
            global().counter(counters::WAL_SEGMENTS_TRIMMED).inc();
        }
        if removed > 0 {
            sync_dir(&self.dir)?;
        }
        Ok(removed)
    }

    /// Replays every durable record, oldest first — the ordered suffix a
    /// cold start feeds back into the retained logs. A torn tail
    /// (truncated or corrupt final record) is dropped and the clean
    /// prefix returned; corruption *before* the tail also stops the
    /// replay there, since everything after an unreadable frame is
    /// unreachable.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when a segment file cannot be read.
    pub fn replay(&self) -> io::Result<Vec<WalRecord>> {
        let segments: Vec<Segment> = self.inner.lock().segments.clone();
        let mut records = Vec::new();
        for (i, segment) in segments.iter().enumerate() {
            let bytes = read_file(&segment.path)?;
            let parsed = parse_segment(&bytes, segment.first_seq);
            records.extend(parsed.records);
            if parsed.torn {
                global().counter(counters::WAL_TORN_TAILS).inc();
                break;
            }
            // Cross-segment contiguity: a gap means the next segment's
            // records are unreachable from this stream position.
            if let Some(next) = segments.get(i + 1) {
                if next.first_seq != parsed.next_seq {
                    break;
                }
            }
        }
        global()
            .counter(counters::WAL_REPLAY_RECORDS)
            .add(records.len() as u64);
        Ok(records)
    }
}

/// Serializes a segment header: magic, layout version, first record seq.
fn segment_header(first_seq: u64) -> Vec<u8> {
    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&first_seq.to_le_bytes());
    header
}

/// Serializes one record frame: `len | crc32(body) | body` with
/// `body = seq | command count | (len | bytes)*`.
fn encode_record(seq: u64, commands: &[Bytes]) -> Vec<u8> {
    let body_len = 8 + 8 + commands.iter().map(|c| 4 + c.len()).sum::<usize>();
    let mut out = Vec::with_capacity(FRAME_LEN + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.extend_from_slice(&[0, 0, 0, 0]); // crc placeholder
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(commands.len() as u64).to_le_bytes());
    for c in commands {
        out.extend_from_slice(&(c.len() as u32).to_le_bytes());
        out.extend_from_slice(c);
    }
    let crc = crc32(&out[FRAME_LEN..]);
    out[4..8].copy_from_slice(&crc.to_le_bytes());
    out
}

/// What a segment scan recovered.
struct ParsedSegment {
    records: Vec<WalRecord>,
    /// Bytes of the file that form valid frames (header included).
    valid_len: usize,
    /// Sequence number the record after the valid prefix would carry.
    next_seq: u64,
    /// Whether trailing bytes past the valid prefix were dropped.
    torn: bool,
}

/// Scans one segment's bytes, stopping at the first invalid frame.
/// Command payloads are zero-copy [`Bytes::slice`]s of the segment
/// buffer — replay hands the stream back without re-allocating each
/// command.
fn parse_segment(bytes: &Bytes, first_seq: u64) -> ParsedSegment {
    let mut records = Vec::new();
    let mut expect_seq = first_seq;
    let header_ok = bytes.len() >= HEADER_LEN
        && &bytes[..8] == MAGIC
        && u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) == VERSION
        && u64::from_le_bytes(bytes[12..HEADER_LEN].try_into().expect("8 bytes")) == first_seq;
    if !header_ok {
        return ParsedSegment {
            records,
            valid_len: 0,
            next_seq: first_seq,
            torn: !bytes.is_empty(),
        };
    }
    let mut at = HEADER_LEN;
    while let Some(frame) = bytes.get(at..at + FRAME_LEN) {
        let body_len = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
        if body_len > MAX_BODY {
            break;
        }
        if bytes.len() < at + FRAME_LEN + body_len {
            break;
        }
        let body = bytes.slice(at + FRAME_LEN..at + FRAME_LEN + body_len);
        if crc32(&body) != crc {
            break;
        }
        let Some(record) = decode_body(&body) else {
            break;
        };
        if record.seq != expect_seq {
            break;
        }
        expect_seq += 1;
        at += FRAME_LEN + body_len;
        records.push(record);
    }
    ParsedSegment {
        records,
        valid_len: at,
        next_seq: expect_seq,
        torn: at < bytes.len(),
    }
}

/// Decodes a crc-verified record body. `None` on a malformed layout
/// (possible despite the crc only if the writer was buggy). Command
/// payloads are slices sharing the segment buffer — no per-command copy.
fn decode_body(body: &Bytes) -> Option<WalRecord> {
    let seq = u64::from_le_bytes(body.get(..8)?.try_into().ok()?);
    let count = u64::from_le_bytes(body.get(8..16)?.try_into().ok()?);
    let count = usize::try_from(count).ok()?;
    let mut commands = Vec::with_capacity(count.min(4096));
    let mut at = 16;
    for _ in 0..count {
        let len = u32::from_le_bytes(body.get(at..at + 4)?.try_into().ok()?) as usize;
        at += 4;
        body.get(at..at + len)?;
        commands.push(body.slice(at..at + len));
        at += len;
    }
    if at != body.len() {
        return None;
    }
    Some(WalRecord { seq, commands })
}

/// The segment files of `dir`, sorted by first sequence number.
fn segment_files(dir: &Path) -> Vec<Segment> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut segments: Vec<Segment> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter_map(|path| {
            let name = path.file_name()?.to_str()?;
            let first_seq: u64 = name
                .strip_prefix("seg-")?
                .strip_suffix(".wal")?
                .parse()
                .ok()?;
            Some(Segment { first_seq, path })
        })
        .collect();
    segments.sort_by_key(|s| s.first_seq);
    segments
}

/// Persists a directory's entry table (after segment create/unlink):
/// `sync_all` on a file does not cover the directory inode that names
/// it, and a segment that vanishes in a power failure would lose every
/// fsynced record inside it.
fn sync_dir(dir: &Path) -> io::Result<()> {
    fs::File::open(dir)?.sync_all()
}

/// Reads a whole file into one shared buffer (segments are bounded by
/// rotation); replayed command payloads slice it without copying.
fn read_file(path: &Path) -> io::Result<Bytes> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    Ok(Bytes::from(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn unique_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "psmr-wal-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn opts(segment_bytes: usize, batch: usize) -> WalOptions {
        WalOptions {
            segment_bytes,
            batch,
        }
    }

    fn cmd(tag: u8, len: usize) -> Bytes {
        Bytes::from(vec![tag; len])
    }

    #[test]
    fn attached_observer_sees_commit_fsyncs_only() {
        use psmr_common::metrics::{histograms, MetricsRegistry};
        let dir = unique_dir("observe");
        let registry = MetricsRegistry::new();
        let wal = Wal::open(&dir, opts(1 << 20, 2)).expect("open");
        wal.observe_fsync(
            registry
                .scoped("group", 0)
                .histogram(histograms::WAL_FSYNC_NS),
        );
        wal.append(1, &[cmd(1, 16)]).expect("append");
        assert_eq!(
            registry.histogram(histograms::WAL_FSYNC_NS).count(),
            0,
            "window open, no commit sync yet"
        );
        wal.append(2, &[cmd(2, 16)]).expect("append closes window");
        assert_eq!(registry.histogram("wal_fsync_ns{group=0}").count(), 1);
        wal.append(3, &[cmd(3, 16)]).expect("append");
        wal.sync().expect("explicit sync");
        assert_eq!(
            registry.histogram(histograms::WAL_FSYNC_NS).count(),
            2,
            "the out-of-lock sync() path records too"
        );
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn append_replay_round_trip() {
        let dir = unique_dir("roundtrip");
        let wal = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(wal.next_seq(), 1);
        wal.append(1, &[cmd(1, 4), cmd(2, 0)]).unwrap();
        wal.append(2, &[]).unwrap(); // a skip round
        wal.append(3, &[cmd(3, 9)]).unwrap();
        let records = wal.replay().unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].commands, vec![cmd(1, 4), cmd(2, 0)]);
        assert!(records[1].commands.is_empty());
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_continues_the_stream() {
        let dir = unique_dir("reopen");
        {
            let wal = Wal::open(&dir, WalOptions::default()).unwrap();
            for seq in 1..=5 {
                wal.append(seq, &[cmd(seq as u8, 8)]).unwrap();
            }
            wal.sync().unwrap();
        }
        let wal = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(wal.next_seq(), 6, "resume point survives reopen");
        assert_eq!(wal.first_seq(), 1);
        wal.append(6, &[cmd(6, 8)]).unwrap();
        assert_eq!(wal.replay().unwrap().len(), 6);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appends_must_stay_contiguous() {
        let dir = unique_dir("contiguous");
        let wal = Wal::open(&dir, WalOptions::default()).unwrap();
        wal.append(1, &[]).unwrap();
        let err = wal.append(5, &[]).expect_err("gap rejected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let err = wal.append(1, &[]).expect_err("duplicate rejected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        wal.append(2, &[]).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A record too large for replay's frame cap must be rejected by
    /// the writer — durably acknowledging a record the reader would
    /// classify as corruption loses it (and everything behind it).
    #[test]
    fn oversized_record_is_rejected_at_append_not_at_replay() {
        let dir = unique_dir("oversized");
        let wal = Wal::open(&dir, WalOptions::default()).unwrap();
        // Bytes clones share one buffer: a >256 MiB body costs 1 MiB.
        let chunk = Bytes::from(vec![7u8; 1024 * 1024]);
        let commands: Vec<Bytes> = (0..257).map(|_| chunk.clone()).collect();
        let err = wal.append(1, &commands).expect_err("over the frame cap");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // The log is untouched: seq 1 is still free for a sane record.
        wal.append(1, &[chunk]).unwrap();
        assert_eq!(wal.replay().unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_creates_segments_and_trim_unlinks_them() {
        let dir = unique_dir("rotate");
        // ~100-byte records against a 256-byte threshold: a few records
        // per segment.
        let wal = Wal::open(&dir, opts(256, 1)).unwrap();
        for seq in 1..=20 {
            wal.append(seq, &[cmd(seq as u8, 100)]).unwrap();
        }
        let segments = wal.segment_count();
        assert!(
            segments >= 4,
            "rotation split the log ({segments} segments)"
        );
        assert_eq!(wal.replay().unwrap().len(), 20, "rotation loses nothing");

        // Trim below 11: every segment fully below seq 11 is unlinked.
        let removed = wal.trim_below(11).unwrap();
        assert!(removed >= 1, "trim reclaimed segments");
        assert_eq!(wal.segment_count(), segments - removed);
        assert!(
            wal.first_seq() <= 11,
            "covered prefix still reaches the cut"
        );
        let replayed = wal.replay().unwrap();
        assert_eq!(replayed.last().unwrap().seq, 20);
        assert!(replayed.first().unwrap().seq <= 11);
        // The files are really gone.
        assert_eq!(segment_files(&dir).len(), wal.segment_count());

        // The tail segment is never removed, however deep the trim.
        wal.trim_below(u64::MAX).unwrap();
        assert_eq!(wal.segment_count(), 1);
        assert_eq!(wal.next_seq(), 21);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The durability watermark: `durable_next_seq` trails `next_seq` by
    /// the open group-commit window and catches up on every fsync, and
    /// `discard_unsynced` drops exactly that window — the power-failure
    /// half of crash testing.
    #[test]
    fn durable_watermark_tracks_fsyncs_and_discard_drops_the_window() {
        let dir = unique_dir("watermark");
        let wal = Wal::open(&dir, opts(usize::MAX, usize::MAX)).unwrap();
        assert_eq!(wal.durable_next_seq(), 1);
        for seq in 1..=5 {
            wal.append(seq, &[cmd(seq as u8, 16)]).unwrap();
        }
        assert_eq!(wal.next_seq(), 6);
        assert_eq!(wal.durable_next_seq(), 1, "nothing fsynced yet");
        wal.sync().unwrap();
        assert_eq!(wal.durable_next_seq(), 6, "sync advances the watermark");
        // Append past the watermark, then lose power.
        for seq in 6..=8 {
            wal.append(seq, &[cmd(seq as u8, 16)]).unwrap();
        }
        assert_eq!(wal.discard_unsynced().unwrap(), 3);
        assert_eq!(wal.next_seq(), 6, "stream resumes at the watermark");
        assert_eq!(wal.replay().unwrap().len(), 5, "durable prefix intact");
        // The healed log keeps appending cleanly from the watermark.
        wal.append(6, &[cmd(9, 16)]).unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.replay().unwrap().len(), 6);
        assert_eq!(wal.discard_unsynced().unwrap(), 0, "nothing open");
        // A reopened log treats everything on disk as durable.
        drop(wal);
        let wal = Wal::open(&dir, opts(usize::MAX, usize::MAX)).unwrap();
        assert_eq!(wal.durable_next_seq(), wal.next_seq());
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Discard across a rotation boundary: sealed segments are durable,
    /// only the active segment's unsynced records vanish.
    #[test]
    fn discard_unsynced_preserves_sealed_segments() {
        let dir = unique_dir("watermark-rotate");
        // Tiny segments force a rotation; no automatic commit fsyncs.
        let wal = Wal::open(&dir, opts(128, usize::MAX)).unwrap();
        for seq in 1..=6 {
            wal.append(seq, &[cmd(seq as u8, 100)]).unwrap();
        }
        assert!(wal.segment_count() >= 2, "rotation happened");
        let discarded = wal.discard_unsynced().unwrap();
        assert!(discarded >= 1);
        let replayed = wal.replay().unwrap();
        assert_eq!(replayed.len() as u64, 6 - discarded);
        assert_eq!(wal.next_seq(), 7 - discarded);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_amortizes_fsyncs() {
        let dir = unique_dir("groupcommit");
        let wal = Wal::open(&dir, opts(usize::MAX, 8)).unwrap();
        for seq in 1..=16 {
            wal.append(seq, &[cmd(1, 16)]).unwrap();
        }
        assert_eq!(wal.append_count(), 16);
        assert_eq!(wal.fsync_count(), 2, "16 appends at batch 8 = 2 fsyncs");
        // A partial window syncs on demand, and only then.
        wal.append(17, &[]).unwrap();
        wal.sync().unwrap();
        wal.sync().unwrap(); // idempotent: nothing left unsynced
        assert_eq!(wal.fsync_count(), 3);
        // A tighter window costs proportionally more syncs.
        let dir2 = unique_dir("groupcommit-tight");
        let tight = Wal::open(&dir2, opts(usize::MAX, 1)).unwrap();
        for seq in 1..=16 {
            tight.append(seq, &[cmd(1, 16)]).unwrap();
        }
        assert_eq!(tight.fsync_count(), 16, "batch 1 syncs every append");
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&dir2).unwrap();
    }

    /// The torn-tail contract: a record truncated mid-write (the crash
    /// window of group commit) is dropped; the prefix replays cleanly;
    /// reopening heals the file so the stream continues on a frame
    /// boundary.
    #[test]
    fn torn_tail_is_dropped_and_the_prefix_replays() {
        let dir = unique_dir("torn");
        {
            let wal = Wal::open(&dir, WalOptions::default()).unwrap();
            for seq in 1..=4 {
                wal.append(seq, &[cmd(seq as u8, 32)]).unwrap();
            }
            wal.sync().unwrap();
        }
        // Tear the tail: chop half of the final record off.
        let seg = &segment_files(&dir)[0].path;
        let bytes = fs::read(seg).unwrap();
        fs::write(seg, &bytes[..bytes.len() - 20]).unwrap();

        let torn_before = global().value(counters::WAL_TORN_TAILS);
        let wal = Wal::open(&dir, WalOptions::default()).unwrap();
        assert!(global().value(counters::WAL_TORN_TAILS) > torn_before);
        let records = wal.replay().unwrap();
        assert_eq!(records.len(), 3, "truncated last record dropped");
        assert_eq!(records.last().unwrap().seq, 3);
        assert_eq!(wal.next_seq(), 4, "stream resumes at the dropped record");
        // The healed log accepts the re-decided record and replays whole.
        wal.append(4, &[cmd(9, 32)]).unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.replay().unwrap().len(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_stops_replay_at_the_corruption() {
        let dir = unique_dir("bitflip");
        {
            let wal = Wal::open(&dir, WalOptions::default()).unwrap();
            for seq in 1..=4 {
                wal.append(seq, &[cmd(seq as u8, 32)]).unwrap();
            }
            wal.sync().unwrap();
        }
        // Flip one bit inside the third record's body.
        let seg = &segment_files(&dir)[0].path;
        let mut bytes = fs::read(seg).unwrap();
        let frame = FRAME_LEN + 8 + 8 + 4 + 32;
        let at = HEADER_LEN + 2 * frame + FRAME_LEN + 5;
        bytes[at] ^= 0x10;
        fs::write(seg, &bytes).unwrap();

        let wal = Wal::open(&dir, WalOptions::default()).unwrap();
        let records = wal.replay().unwrap();
        assert_eq!(records.len(), 2, "replay stops at the corrupt frame");
        assert_eq!(wal.next_seq(), 3, "appends resume behind the valid prefix");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_and_garbage_segments_are_not_trusted() {
        let dir = unique_dir("garbage");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("seg-00000000000000000001.wal"), b"not a wal").unwrap();
        fs::write(dir.join("unrelated.txt"), b"ignored").unwrap();
        let wal = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(wal.replay().unwrap(), Vec::new());
        assert_eq!(wal.next_seq(), 1, "garbage contributes nothing");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn absurd_frame_length_is_corruption_not_an_allocation() {
        let dir = unique_dir("absurd");
        {
            let wal = Wal::open(&dir, WalOptions::default()).unwrap();
            wal.append(1, &[cmd(1, 8)]).unwrap();
            wal.sync().unwrap();
        }
        let seg = &segment_files(&dir)[0].path;
        let mut bytes = fs::read(seg).unwrap();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0xAB; 12]);
        fs::write(seg, &bytes).unwrap();
        let wal = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(wal.replay().unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
