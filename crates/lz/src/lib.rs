//! LZ77 block compression — the workspace's stand-in for lz4.
//!
//! NetFS compresses every request on the client and decompresses it at the
//! worker that executes it, then compresses the response on the way back
//! (§VI-C of the paper; the paper uses lz4). This crate implements a small
//! LZ77 byte-oriented block format with a greedy hash-chain matcher:
//!
//! * compression walks the input keeping a hash table of recent 4-byte
//!   sequences and emits `(literal run, match)` token pairs, like lz4's
//!   block format;
//! * decompression is a single pass of copies — much cheaper than
//!   compression, preserving the asymmetry the paper uses to explain why
//!   NetFS reads (which compress large responses) show higher latency than
//!   writes (§VII-H).
//!
//! # Format
//!
//! Each token: 1 control byte (`lit_len` in the high nibble, `match_len -
//! MIN_MATCH` in the low nibble, 15 = "more bytes follow" as in lz4),
//! extension bytes, literals, then a 2-byte little-endian match offset
//! (absent for the terminal token).
//!
//! # Example
//!
//! ```
//! let data = b"abcabcabcabcabc-abcabcabcabcabc";
//! let compressed = psmr_lz::compress(data);
//! assert!(compressed.len() < data.len());
//! let back = psmr_lz::decompress(&compressed).unwrap();
//! assert_eq!(back, data);
//! ```

use std::fmt;

/// Minimum match length worth encoding (shorter matches cost more than
/// literals).
const MIN_MATCH: usize = 4;
/// Maximum backwards distance a match may reference (64 KiB window).
const MAX_OFFSET: usize = u16::MAX as usize;
/// Hash table size (power of two).
const HASH_BITS: u32 = 14;

/// Compresses a byte slice.
///
/// The output always decompresses to the input; incompressible data grows
/// by at most ~1/15 plus a small constant.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut pos = 0usize;
    let mut literal_start = 0usize;

    let hash = |window: &[u8]| -> usize {
        let v = u32::from_le_bytes(window[..4].try_into().expect("4 bytes"));
        (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
    };

    while pos + MIN_MATCH <= input.len() {
        let h = hash(&input[pos..]);
        let candidate = table[h];
        table[h] = pos;
        let found = candidate != usize::MAX
            && pos - candidate <= MAX_OFFSET
            && input[candidate..candidate + MIN_MATCH] == input[pos..pos + MIN_MATCH];
        if found {
            // Extend the match as far as possible.
            let mut len = MIN_MATCH;
            while pos + len < input.len() && input[candidate + len] == input[pos + len] {
                len += 1;
            }
            emit_token(
                &mut out,
                &input[literal_start..pos],
                Some(((pos - candidate) as u16, len)),
            );
            // Seed the table through the match so later data can reference
            // its interior (cheap approximation of lz4's behaviour).
            let end = (pos + len).min(input.len().saturating_sub(MIN_MATCH - 1));
            let mut p = pos + 1;
            while p < end {
                table[hash(&input[p..])] = p;
                p += 2;
            }
            pos += len;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }
    emit_token(&mut out, &input[literal_start..], None);
    out
}

fn emit_token(out: &mut Vec<u8>, literals: &[u8], m: Option<(u16, usize)>) {
    let lit_len = literals.len();
    let match_len = m.map(|(_, l)| l - MIN_MATCH).unwrap_or(0);
    let control = ((lit_len.min(15) as u8) << 4) | (match_len.min(15) as u8);
    out.push(control);
    if lit_len >= 15 {
        write_varlen(out, lit_len - 15);
    }
    out.extend_from_slice(literals);
    match m {
        Some((offset, len)) => {
            if len - MIN_MATCH >= 15 {
                write_varlen(out, len - MIN_MATCH - 15);
            }
            out.extend_from_slice(&offset.to_le_bytes());
        }
        None => {
            // Terminal token: no offset bytes. The decoder recognizes it by
            // running out of input after the literals.
        }
    }
}

/// lz4-style length extension: 255-valued bytes accumulate, a sub-255 byte
/// terminates.
fn write_varlen(out: &mut Vec<u8>, mut extra: usize) {
    while extra >= 255 {
        out.push(255);
        extra -= 255;
    }
    out.push(extra as u8);
}

fn read_varlen(input: &[u8], pos: &mut usize) -> Result<usize, DecompressError> {
    let mut total = 0usize;
    loop {
        let b = *input.get(*pos).ok_or(DecompressError::Truncated)?;
        *pos += 1;
        total += b as usize;
        if b != 255 {
            return Ok(total);
        }
    }
}

/// Decompresses a block produced by [`compress`].
///
/// # Errors
///
/// Returns [`DecompressError`] on truncated input or matches referencing
/// data before the start of the output.
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, DecompressError> {
    let mut out = Vec::with_capacity(input.len() * 3);
    let mut pos = 0usize;
    while pos < input.len() {
        let control = input[pos];
        pos += 1;
        let mut lit_len = (control >> 4) as usize;
        let mut match_len = (control & 0x0F) as usize + MIN_MATCH;
        if lit_len == 15 {
            lit_len += read_varlen(input, &mut pos)?;
        }
        if pos + lit_len > input.len() {
            return Err(DecompressError::Truncated);
        }
        out.extend_from_slice(&input[pos..pos + lit_len]);
        pos += lit_len;
        if pos == input.len() {
            break; // terminal token: literals only
        }
        if control & 0x0F == 15 {
            match_len += read_varlen(input, &mut pos)?;
        }
        if pos + 2 > input.len() {
            return Err(DecompressError::Truncated);
        }
        let offset = u16::from_le_bytes(input[pos..pos + 2].try_into().expect("2 bytes")) as usize;
        pos += 2;
        if offset == 0 || offset > out.len() {
            return Err(DecompressError::BadOffset {
                offset,
                produced: out.len(),
            });
        }
        // Byte-by-byte copy: matches may overlap themselves (RLE-style).
        let start = out.len() - offset;
        for i in 0..match_len {
            let b = out[start + i];
            out.push(b);
        }
    }
    Ok(out)
}

/// Error returned by [`decompress`] on malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompressError {
    /// The block ended in the middle of a token.
    Truncated,
    /// A match referenced data before the beginning of the output.
    BadOffset {
        /// The offending backwards offset.
        offset: usize,
        /// Bytes produced so far.
        produced: usize,
    },
}

impl fmt::Display for DecompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "truncated compressed block"),
            DecompressError::BadOffset { offset, produced } => {
                write!(f, "match offset {offset} exceeds produced bytes {produced}")
            }
        }
    }
}

impl std::error::Error for DecompressError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> Vec<u8> {
        let c = compress(data);
        decompress(&c).expect("valid block")
    }

    #[test]
    fn empty_input() {
        assert_eq!(round_trip(b""), b"");
        assert!(compress(b"").len() <= 2);
    }

    #[test]
    fn short_literals_pass_through() {
        for len in 1..=8 {
            let data: Vec<u8> = (0..len as u8).collect();
            assert_eq!(round_trip(&data), data);
        }
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let data = vec![b'x'; 10_000];
        let c = compress(&data);
        assert!(c.len() < 200, "RLE-like data: {} bytes", c.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn text_like_data_compresses() {
        let data = b"the quick brown fox jumps over the lazy dog. \
                     the quick brown fox jumps over the lazy dog. \
                     the quick brown fox jumps over the lazy dog."
            .to_vec();
        let c = compress(&data);
        assert!(c.len() < data.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn incompressible_data_round_trips() {
        // Pseudo-random bytes: no matches, bounded expansion.
        let mut state = 0x9E3779B97F4A7C15u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 56) as u8
            })
            .collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(c.len() <= data.len() + data.len() / 15 + 16);
    }

    #[test]
    fn overlapping_matches_decode_correctly() {
        // "abcabcabc..." forces offset < match_len (self-overlapping copy).
        let data: Vec<u8> = b"abc".iter().cycle().take(999).copied().collect();
        assert_eq!(round_trip(&data), data);
    }

    #[test]
    fn long_literal_runs_use_extension_bytes() {
        // >15 distinct literals before any match.
        let mut data: Vec<u8> = (0u16..600).map(|i| (i % 251) as u8).collect();
        data.extend_from_slice(&data.clone()); // now a big match exists
        assert_eq!(round_trip(&data), data);
    }

    #[test]
    fn long_matches_use_extension_bytes() {
        let mut data = b"seed0123".to_vec();
        let rep: Vec<u8> = data.iter().cycle().take(5000).copied().collect();
        data = rep;
        let c = compress(&data);
        assert!(c.len() < data.len() / 4);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn truncated_blocks_are_rejected() {
        let data = b"abcabcabcabcabcabc";
        let c = compress(data);
        for cut in 1..c.len() {
            // Any truncation either errors or (for literal-only prefixes)
            // yields a strict prefix of the input — never garbage or panic.
            match decompress(&c[..cut]) {
                Ok(prefix) => assert!(data.starts_with(&prefix[..])),
                Err(e) => {
                    let _ = e.to_string();
                }
            }
        }
    }

    #[test]
    fn bad_offset_is_rejected() {
        // Control: 0 literals, match_len 4; offset 7 with nothing produced.
        let block = [0x00u8, 7, 0];
        assert!(matches!(
            decompress(&block),
            Err(DecompressError::BadOffset { .. })
        ));
    }

    #[test]
    fn compression_is_deterministic() {
        let data = b"determinism matters for replicated execution".repeat(10);
        assert_eq!(compress(&data), compress(&data));
    }
}
