//! Property test: compression round-trips for arbitrary inputs, including
//! highly repetitive ones where matches dominate.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_bytes_round_trip(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let c = psmr_lz::compress(&data);
        let back = psmr_lz::decompress(&c).expect("own output decodes");
        prop_assert_eq!(back, data);
    }

    #[test]
    fn low_entropy_bytes_round_trip_and_shrink(
        data in prop::collection::vec(0u8..4, 512..4096)
    ) {
        let c = psmr_lz::compress(&data);
        let back = psmr_lz::decompress(&c).expect("own output decodes");
        prop_assert_eq!(&back, &data);
        // At 512+ bytes a 4-symbol alphabet always repeats 4-grams, so the
        // greedy matcher must shrink it (short inputs may not compress).
        prop_assert!(c.len() < data.len());
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = psmr_lz::decompress(&data); // Ok or Err, never panic
    }
}
