//! The replicated key-value store service.

use crate::ops::{key_of_payload, KvResult, DELETE, INSERT, READ, UPDATE};
use parking_lot::RwLock;
use psmr_btree::BPlusTree;
use psmr_common::ids::CommandId;
use psmr_core::conflict::{CommandClass, DependencySpec};
use psmr_core::service::Service;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The store each replica executes commands against: a B+-tree with 8-byte
/// keys and 8-byte values.
///
/// Concurrency contract (matches the C-Dep of §V-A):
///
/// * `insert`/`delete` restructure the tree → they take the tree's write
///   lock. C-Dep marks them Global, so the engine runs them in isolation
///   anyway; the lock makes the service safe under any engine.
/// * `read`/`update` touch one entry → read lock on the tree plus an
///   atomic load/store on the value cell. Same-key update/update and
///   update/read races are excluded by C-Dep (same key → same group →
///   serialized).
///
/// # Example
///
/// ```
/// use psmr_core::service::Service;
/// use psmr_kvstore::{KvService, KvOp, KvResult, READ};
///
/// let store = KvService::with_keys(100); // keys 0..100, value = key
/// let resp = store.execute(READ, &KvOp::Read { key: 42 }.encode());
/// assert_eq!(KvResult::decode(&resp), KvResult::Value(42));
/// ```
#[derive(Debug)]
pub struct KvService {
    tree: RwLock<BPlusTree<AtomicU64>>,
    work: Duration,
}

impl KvService {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self {
            tree: RwLock::new(BPlusTree::new()),
            work: Duration::ZERO,
        }
    }

    /// Creates a store pre-loaded with keys `0..n`, each mapped to its own
    /// key value — the paper initializes replicas with 10 million keys.
    pub fn with_keys(n: u64) -> Self {
        let mut tree = BPlusTree::new();
        for k in 0..n {
            tree.insert(k, AtomicU64::new(k));
        }
        Self {
            tree: RwLock::new(tree),
            work: Duration::ZERO,
        }
    }

    /// Like [`KvService::with_keys`], plus a calibrated per-command
    /// execution cost.
    ///
    /// On the paper's testbed the service executes at "main-memory speed"
    /// (~1.2 µs per command against a 10-million-key tree) while the
    /// ordering layer delivers millions of commands per second over real
    /// NICs. On this reproduction's single-host substrate the ordering
    /// layer is relatively slower, so with a free service *every* technique
    /// becomes ordering-bound and the execution-side effects the paper
    /// measures (the single-executor ceiling of SMR, parallel execution in
    /// P-SMR/sP-SMR) would be invisible. The evaluation harness therefore
    /// spins for `work` per command to restore the paper's regime; the
    /// value is reported in `EXPERIMENTS.md`.
    pub fn with_keys_and_work(n: u64, work: Duration) -> Self {
        let mut service = Self::with_keys(n);
        service.work = work;
        service
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.tree.read().len()
    }

    /// Returns whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for KvService {
    fn default() -> Self {
        Self::new()
    }
}

impl Service for KvService {
    fn execute(&self, command: CommandId, payload: &[u8]) -> Vec<u8> {
        spin_for(self.work);
        let key = key_of_payload(payload);
        let result = match command {
            READ => match self.tree.read().get(&key) {
                Some(cell) => KvResult::Value(cell.load(Ordering::Acquire)),
                None => KvResult::Err,
            },
            UPDATE => {
                let value =
                    u64::from_le_bytes(payload[8..16].try_into().expect("update carries a value"));
                match self.tree.read().get(&key) {
                    Some(cell) => {
                        cell.store(value, Ordering::Release);
                        KvResult::Ok
                    }
                    None => KvResult::Err,
                }
            }
            INSERT => {
                let value =
                    u64::from_le_bytes(payload[8..16].try_into().expect("insert carries a value"));
                let mut tree = self.tree.write();
                // The paper's insert may return an error code; we treat
                // re-inserting an existing key as the error case and leave
                // the existing entry untouched.
                if tree.get(&key).is_some() {
                    KvResult::Err
                } else {
                    tree.insert(key, AtomicU64::new(value));
                    KvResult::Ok
                }
            }
            DELETE => match self.tree.write().remove(&key) {
                Some(_) => KvResult::Ok,
                None => KvResult::Err,
            },
            other => panic!("unknown kv command {other}"),
        };
        result.encode()
    }
}

impl psmr_recovery::Snapshot for KvService {
    /// Deterministic encoding (the shared [`psmr_recovery::encode_kv_pairs`]
    /// layout): entry count followed by `(key, value)` pairs in ascending
    /// key order — identical bytes on every replica snapshotting at the
    /// same cut.
    fn snapshot(&self) -> Vec<u8> {
        let tree = self.tree.read();
        let pairs: Vec<(u64, u64)> = tree
            .iter()
            .map(|(key, cell)| (key, cell.load(Ordering::Acquire)))
            .collect();
        psmr_recovery::encode_kv_pairs(&pairs)
    }

    fn restore(&self, snapshot: &[u8]) -> Result<(), psmr_recovery::RestoreError> {
        let pairs = psmr_recovery::decode_kv_pairs(snapshot)?;
        let mut rebuilt = BPlusTree::new();
        for (key, value) in pairs {
            rebuilt.insert(key, AtomicU64::new(value));
        }
        *self.tree.write() = rebuilt;
        Ok(())
    }
}

/// Busy-spins for `work` (no-op when zero): the calibrated execution cost
/// of [`KvService::with_keys_and_work`].
pub fn spin_for(work: Duration) {
    if work.is_zero() {
        return;
    }
    let deadline = std::time::Instant::now() + work;
    while std::time::Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

/// The fine-grained C-Dep of §V-A: updates and reads are keyed; inserts
/// and deletes depend on everything. This is the spec the paper's P-SMR
/// prototype uses (the `(x mod k) + 1` C-G of §IV-C).
pub fn fine_dependency_spec() -> DependencySpec {
    let mut spec = DependencySpec::new();
    spec.declare(READ, CommandClass::Keyed { writes: false })
        .declare(UPDATE, CommandClass::Keyed { writes: true })
        .declare(INSERT, CommandClass::Global)
        .declare(DELETE, CommandClass::Global)
        .key_extractor(key_of_payload);
    spec
}

/// The coarse C-Dep of §IV-C's first example: reads go to a single group
/// chosen round-robin, every write depends on everything. Used by the
/// dependency-granularity ablation.
pub fn coarse_dependency_spec() -> DependencySpec {
    let mut spec = DependencySpec::new();
    spec.declare(READ, CommandClass::Free)
        .declare(UPDATE, CommandClass::Global)
        .declare(INSERT, CommandClass::Global)
        .declare(DELETE, CommandClass::Global)
        .key_extractor(key_of_payload);
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::KvOp;

    fn run(store: &KvService, op: KvOp) -> KvResult {
        KvResult::decode(&store.execute(op.command(), &op.encode()))
    }

    #[test]
    fn crud_cycle() {
        let store = KvService::new();
        assert_eq!(run(&store, KvOp::Read { key: 1 }), KvResult::Err);
        assert_eq!(
            run(&store, KvOp::Insert { key: 1, value: 10 }),
            KvResult::Ok
        );
        assert_eq!(run(&store, KvOp::Read { key: 1 }), KvResult::Value(10));
        assert_eq!(
            run(&store, KvOp::Update { key: 1, value: 11 }),
            KvResult::Ok
        );
        assert_eq!(run(&store, KvOp::Read { key: 1 }), KvResult::Value(11));
        assert_eq!(run(&store, KvOp::Delete { key: 1 }), KvResult::Ok);
        assert_eq!(run(&store, KvOp::Read { key: 1 }), KvResult::Err);
        assert!(store.is_empty());
    }

    #[test]
    fn error_codes_match_paper_semantics() {
        let store = KvService::new();
        // update of a missing key: error.
        assert_eq!(
            run(&store, KvOp::Update { key: 5, value: 0 }),
            KvResult::Err
        );
        // delete of a missing key: error.
        assert_eq!(run(&store, KvOp::Delete { key: 5 }), KvResult::Err);
        // double insert: error.
        assert_eq!(run(&store, KvOp::Insert { key: 5, value: 1 }), KvResult::Ok);
        assert_eq!(
            run(&store, KvOp::Insert { key: 5, value: 2 }),
            KvResult::Err
        );
        // the failed re-insert replaced nothing.
        assert_eq!(run(&store, KvOp::Read { key: 5 }), KvResult::Value(1));
    }

    #[test]
    fn with_keys_preloads_identity_mapping() {
        let store = KvService::with_keys(1000);
        assert_eq!(store.len(), 1000);
        assert_eq!(run(&store, KvOp::Read { key: 0 }), KvResult::Value(0));
        assert_eq!(run(&store, KvOp::Read { key: 999 }), KvResult::Value(999));
        assert_eq!(run(&store, KvOp::Read { key: 1000 }), KvResult::Err);
    }

    #[test]
    fn concurrent_reads_and_updates_on_distinct_keys() {
        let store = std::sync::Arc::new(KvService::with_keys(1024));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let store = std::sync::Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let key = (i * 8 + t) % 1024; // disjoint per thread
                    if i % 2 == 0 {
                        assert_eq!(
                            run(
                                &store,
                                KvOp::Update {
                                    key,
                                    value: t * 100 + i
                                }
                            ),
                            KvResult::Ok
                        );
                    } else {
                        assert!(matches!(
                            run(&store, KvOp::Read { key }),
                            KvResult::Value(_)
                        ));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 1024);
    }

    #[test]
    fn calibrated_work_delays_execution() {
        let store = KvService::with_keys_and_work(10, Duration::from_micros(200));
        let started = std::time::Instant::now();
        run(&store, KvOp::Read { key: 1 });
        assert!(started.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn snapshot_restore_round_trips_and_is_deterministic() {
        use psmr_recovery::Snapshot;
        let store = KvService::with_keys(100);
        run(&store, KvOp::Update { key: 7, value: 777 });
        run(&store, KvOp::Insert { key: 500, value: 1 });
        run(&store, KvOp::Delete { key: 3 });
        let snap = store.snapshot();
        // A twin replica that executed the same commands snapshots the
        // identical bytes.
        let twin = KvService::with_keys(100);
        run(&twin, KvOp::Update { key: 7, value: 777 });
        run(&twin, KvOp::Insert { key: 500, value: 1 });
        run(&twin, KvOp::Delete { key: 3 });
        assert_eq!(twin.snapshot(), snap);
        // Restoring into a fresh (even divergent) store reproduces state.
        let recovered = KvService::with_keys(5);
        recovered.restore(&snap).expect("restores");
        assert_eq!(recovered.len(), 100);
        assert_eq!(run(&recovered, KvOp::Read { key: 7 }), KvResult::Value(777));
        assert_eq!(run(&recovered, KvOp::Read { key: 500 }), KvResult::Value(1));
        assert_eq!(run(&recovered, KvOp::Read { key: 3 }), KvResult::Err);
        assert_eq!(recovered.snapshot(), snap);
    }

    #[test]
    fn snapshots_restore_across_tree_implementations() {
        use psmr_recovery::Snapshot;
        // The serial-tree service and the concurrent tree share one codec:
        // either one restores from the other's checkpoint.
        let store = KvService::with_keys(50);
        run(&store, KvOp::Update { key: 9, value: 99 });
        let concurrent: psmr_btree::ConcurrentBPlusTree<u64> =
            psmr_btree::ConcurrentBPlusTree::new();
        concurrent
            .restore(&store.snapshot())
            .expect("cross-restore");
        assert_eq!(concurrent.len(), 50);
        assert_eq!(concurrent.get(&9), Some(99));
        let back = KvService::new();
        back.restore(&concurrent.snapshot()).expect("round trip");
        assert_eq!(back.snapshot(), store.snapshot());
    }

    #[test]
    fn malformed_snapshots_are_rejected() {
        use psmr_recovery::Snapshot;
        let store = KvService::new();
        assert!(store.restore(&[1, 2, 3]).is_err(), "truncated header");
        let mut bad = 2u64.to_le_bytes().to_vec();
        bad.extend_from_slice(&[0u8; 16]); // claims 2 pairs, carries 1
        assert!(store.restore(&bad).is_err(), "length mismatch");
    }

    #[test]
    fn specs_compile_and_classify() {
        let fine = fine_dependency_spec().into_map();
        assert!(fine.is_write(INSERT));
        assert!(fine.is_write(UPDATE));
        assert!(!fine.is_write(READ));
        let coarse = coarse_dependency_spec().into_map();
        assert!(coarse.is_write(UPDATE));
        assert!(!coarse.is_write(READ));
    }
}
