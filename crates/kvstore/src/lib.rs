//! The key-value store service of the paper (§V-A, §VI-B).
//!
//! An in-memory database over a B+-tree with four commands:
//!
//! * `insert(k, v)` — adds an entry; may restructure the tree,
//! * `delete(k)` — removes an entry; may restructure the tree,
//! * `read(k)` — returns the value of `k`,
//! * `update(k, v)` — replaces the value of `k`.
//!
//! Keys and values are 8-byte integers; the store is initialized with a
//! configurable number of keys (10 million in the paper's runs).
//!
//! Dependencies (§V-A): *"inserts and deletes depend on all commands; an
//! update on key k depends on other updates on k, on reads on k, and on
//! inserts and deletes"* — encoded by [`fine_dependency_spec`]. The coarse
//! alternative of §IV-C (reads anywhere, every write global) is
//! [`coarse_dependency_spec`], used by the C-Dep-granularity ablation.
//!
//! [`locked::LockedKvEngine`] is the lock-based multithreaded baseline
//! standing in for Berkeley DB: no scheduler, no ordering — server threads
//! execute directly against a lock-coupling concurrent B+-tree.

pub mod lock_manager;
pub mod locked;
pub mod ops;
pub mod service;

pub use lock_manager::{LockManager, LockMode};
pub use locked::LockedKvEngine;
pub use ops::{KvOp, KvResult, DELETE, INSERT, READ, UPDATE};
pub use service::{coarse_dependency_spec, fine_dependency_spec, KvService};
