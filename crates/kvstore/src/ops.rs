//! Command identifiers and payload marshalling for the key-value store.
//!
//! The command signatures of §V-A:
//!
//! ```text
//! insert(in: int k, char[] v, out: int err)
//! delete(in: int k, out: int err)
//! read  (in: int k, out: char[] v, int err)
//! update(in: int k, char[] v, out: int err)
//! ```

use psmr_common::ids::CommandId;

/// `read(in: int k, out: char[] v, int err)`.
pub const READ: CommandId = CommandId::new(0);
/// `update(in: int k, char[] v, out: int err)`.
pub const UPDATE: CommandId = CommandId::new(1);
/// `insert(in: int k, char[] v, out: int err)`.
pub const INSERT: CommandId = CommandId::new(2);
/// `delete(in: int k, out: int err)`.
pub const DELETE: CommandId = CommandId::new(3);

/// A decoded store invocation, as used by workload generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp {
    /// Read the value of a key.
    Read {
        /// The key.
        key: u64,
    },
    /// Replace the value of an existing key.
    Update {
        /// The key.
        key: u64,
        /// The new value.
        value: u64,
    },
    /// Add a key.
    Insert {
        /// The key.
        key: u64,
        /// The value.
        value: u64,
    },
    /// Remove a key.
    Delete {
        /// The key.
        key: u64,
    },
}

impl KvOp {
    /// The command identifier of this operation.
    pub fn command(&self) -> CommandId {
        match self {
            KvOp::Read { .. } => READ,
            KvOp::Update { .. } => UPDATE,
            KvOp::Insert { .. } => INSERT,
            KvOp::Delete { .. } => DELETE,
        }
    }

    /// The key the operation addresses.
    pub fn key(&self) -> u64 {
        match *self {
            KvOp::Read { key }
            | KvOp::Update { key, .. }
            | KvOp::Insert { key, .. }
            | KvOp::Delete { key } => key,
        }
    }

    /// Marshals the input parameters (the request payload).
    pub fn encode(&self) -> Vec<u8> {
        match *self {
            KvOp::Read { key } | KvOp::Delete { key } => key.to_le_bytes().to_vec(),
            KvOp::Update { key, value } | KvOp::Insert { key, value } => {
                let mut p = key.to_le_bytes().to_vec();
                p.extend_from_slice(&value.to_le_bytes());
                p
            }
        }
    }

    /// Whether the paper's fine C-Dep classifies this as a dependent
    /// command (inserts and deletes depend on everything).
    pub fn is_structural(&self) -> bool {
        matches!(self, KvOp::Insert { .. } | KvOp::Delete { .. })
    }
}

/// Extracts the key from any marshalled store payload (first 8 bytes) —
/// the C-Dep key extractor.
pub fn key_of_payload(payload: &[u8]) -> u64 {
    u64::from_le_bytes(
        payload[..8]
            .try_into()
            .expect("payloads start with the key"),
    )
}

/// A decoded store response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvResult {
    /// The operation succeeded (insert/update/delete).
    Ok,
    /// A read succeeded with this value.
    Value(u64),
    /// The key did not exist (read/update/delete) or already existed
    /// (insert).
    Err,
}

impl KvResult {
    /// Marshals the output parameters (the response payload).
    pub fn encode(&self) -> Vec<u8> {
        match *self {
            KvResult::Ok => vec![0],
            KvResult::Err => vec![1],
            KvResult::Value(v) => {
                let mut out = vec![2];
                out.extend_from_slice(&v.to_le_bytes());
                out
            }
        }
    }

    /// Parses a marshalled response.
    ///
    /// # Panics
    ///
    /// Panics on malformed bytes: responses are produced by our own
    /// service, so corruption is a bug.
    pub fn decode(payload: &[u8]) -> Self {
        match payload[0] {
            0 => KvResult::Ok,
            1 => KvResult::Err,
            2 => KvResult::Value(u64::from_le_bytes(
                payload[1..9].try_into().expect("value bytes"),
            )),
            tag => panic!("unknown kv response tag {tag}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_carry_their_command_ids_and_keys() {
        assert_eq!(KvOp::Read { key: 3 }.command(), READ);
        assert_eq!(KvOp::Update { key: 3, value: 4 }.command(), UPDATE);
        assert_eq!(KvOp::Insert { key: 3, value: 4 }.command(), INSERT);
        assert_eq!(KvOp::Delete { key: 3 }.command(), DELETE);
        assert_eq!(KvOp::Delete { key: 9 }.key(), 9);
        assert!(KvOp::Insert { key: 0, value: 0 }.is_structural());
        assert!(!KvOp::Read { key: 0 }.is_structural());
    }

    #[test]
    fn payload_encoding_starts_with_key() {
        for op in [
            KvOp::Read { key: 77 },
            KvOp::Update { key: 77, value: 1 },
            KvOp::Insert { key: 77, value: 1 },
            KvOp::Delete { key: 77 },
        ] {
            assert_eq!(key_of_payload(&op.encode()), 77);
        }
    }

    #[test]
    fn results_round_trip() {
        for r in [KvResult::Ok, KvResult::Err, KvResult::Value(123456789)] {
            assert_eq!(KvResult::decode(&r.encode()), r);
        }
    }

    #[test]
    #[should_panic(expected = "unknown kv response tag")]
    fn unknown_tag_panics() {
        KvResult::decode(&[9]);
    }
}
