//! A centralized page-lock manager, Berkeley-DB style.
//!
//! Berkeley DB synchronizes its B-tree through a *lock manager*: every
//! access acquires a page lock from a central lock table before touching
//! the tree, and the table itself is a shared structure protected by
//! region mutexes — a well-known scalability bottleneck of lock-based
//! stores, and part of why the paper measures BDB far below the other
//! single-server baselines (§VII-C: "BDB has the lowest throughput due to
//! high overhead with locking, reflected in the CPU usage").
//!
//! [`LockManager`] reproduces that architecture: keys map to pages
//! (`key / PAGE_SPAN`), pages are locked in shared or exclusive mode, all
//! bookkeeping lives in one central table behind a mutex, and waiters park
//! on a condvar. [`LockedKvEngine`](crate::LockedKvEngine) acquires a page
//! lock around every command when constructed in lock-manager mode.
//!
//! # Example
//!
//! ```
//! use psmr_kvstore::lock_manager::{LockManager, LockMode};
//!
//! let mgr = LockManager::new();
//! let read = mgr.acquire(10, LockMode::Shared);
//! let read2 = mgr.acquire(10, LockMode::Shared); // readers coexist
//! drop(read);
//! drop(read2);
//! let write = mgr.acquire(10, LockMode::Exclusive);
//! drop(write);
//! ```

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;

/// Keys per page: key `k` lives on page `k / PAGE_SPAN`. 64 entries per
/// page mirrors our B+-tree node fanout.
pub const PAGE_SPAN: u64 = 64;

/// Requested access mode for a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Multiple readers may hold the page together.
    Shared,
    /// A single writer excludes everyone.
    Exclusive,
}

#[derive(Debug, Default)]
struct PageState {
    /// Number of shared holders.
    readers: u32,
    /// Whether an exclusive holder exists.
    writer: bool,
    /// Writers queued; used to block new readers so writers are not
    /// starved (BDB's lock table does the same).
    waiting_writers: u32,
}

#[derive(Debug, Default)]
struct Table {
    pages: HashMap<u64, PageState>,
    /// Cumulative acquisitions (diagnostics).
    acquired: u64,
    /// Acquisitions that had to wait at least once.
    contended: u64,
}

/// The central lock table. All state sits behind **one** mutex, as in
/// BDB's lock region: every acquire and release serializes through it,
/// which is precisely the scalability behaviour the baseline models.
#[derive(Debug, Default)]
pub struct LockManager {
    table: Mutex<Table>,
    wakeup: Condvar,
}

impl LockManager {
    /// Creates an empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The page a key belongs to.
    pub fn page_of(key: u64) -> u64 {
        key / PAGE_SPAN
    }

    /// Blocks until the page can be locked in `mode`, then returns a guard
    /// that releases on drop.
    pub fn acquire(&self, page: u64, mode: LockMode) -> PageGuard<'_> {
        let mut table = self.table.lock();
        let mut waited = false;
        loop {
            let state = table.pages.entry(page).or_default();
            let granted = match mode {
                // New readers also yield to queued writers (no starvation).
                LockMode::Shared => !state.writer && state.waiting_writers == 0,
                LockMode::Exclusive => !state.writer && state.readers == 0,
            };
            if granted {
                match mode {
                    LockMode::Shared => state.readers += 1,
                    LockMode::Exclusive => state.writer = true,
                }
                table.acquired += 1;
                if waited {
                    table.contended += 1;
                }
                return PageGuard {
                    manager: self,
                    page,
                    mode,
                };
            }
            if mode == LockMode::Exclusive && !waited {
                state.waiting_writers += 1;
            } else if mode == LockMode::Exclusive {
                // Already queued.
            }
            waited = true;
            self.wakeup.wait(&mut table);
            if mode == LockMode::Exclusive {
                // We were counted as waiting; re-evaluate with the count
                // still held so shared requests keep yielding.
                let state = table.pages.entry(page).or_default();
                let granted = !state.writer && state.readers == 0;
                if granted {
                    state.waiting_writers -= 1;
                    state.writer = true;
                    table.acquired += 1;
                    table.contended += 1;
                    return PageGuard {
                        manager: self,
                        page,
                        mode,
                    };
                }
            }
        }
    }

    /// Convenience: locks the page of `key`.
    pub fn acquire_key(&self, key: u64, mode: LockMode) -> PageGuard<'_> {
        self.acquire(Self::page_of(key), mode)
    }

    /// Total acquisitions so far.
    pub fn acquired(&self) -> u64 {
        self.table.lock().acquired
    }

    /// Acquisitions that had to wait (lock contention).
    pub fn contended(&self) -> u64 {
        self.table.lock().contended
    }

    fn release(&self, page: u64, mode: LockMode) {
        let mut table = self.table.lock();
        let remove = {
            let state = table.pages.get_mut(&page).expect("released page is locked");
            match mode {
                LockMode::Shared => {
                    state.readers -= 1;
                }
                LockMode::Exclusive => {
                    state.writer = false;
                }
            }
            state.readers == 0 && !state.writer && state.waiting_writers == 0
        };
        if remove {
            table.pages.remove(&page);
        }
        drop(table);
        self.wakeup.notify_all();
    }
}

/// RAII guard for a held page lock; releases on drop.
#[derive(Debug)]
pub struct PageGuard<'a> {
    manager: &'a LockManager,
    page: u64,
    mode: LockMode,
}

impl PageGuard<'_> {
    /// The locked page.
    pub fn page(&self) -> u64 {
        self.page
    }

    /// The granted mode.
    pub fn mode(&self) -> LockMode {
        self.mode
    }
}

impl Drop for PageGuard<'_> {
    fn drop(&mut self) {
        self.manager.release(self.page, self.mode);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn keys_map_to_pages() {
        assert_eq!(LockManager::page_of(0), 0);
        assert_eq!(LockManager::page_of(63), 0);
        assert_eq!(LockManager::page_of(64), 1);
    }

    #[test]
    fn readers_share_a_page() {
        let mgr = LockManager::new();
        let a = mgr.acquire(1, LockMode::Shared);
        let b = mgr.acquire(1, LockMode::Shared);
        assert_eq!(mgr.acquired(), 2);
        drop((a, b));
    }

    #[test]
    fn distinct_pages_do_not_interact() {
        let mgr = LockManager::new();
        let a = mgr.acquire(1, LockMode::Exclusive);
        let b = mgr.acquire(2, LockMode::Exclusive);
        drop((a, b));
        assert_eq!(mgr.contended(), 0);
    }

    #[test]
    fn writer_excludes_readers_and_writers() {
        let mgr = Arc::new(LockManager::new());
        let guard = mgr.acquire(5, LockMode::Exclusive);
        let concurrent = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for mode in [LockMode::Shared, LockMode::Exclusive] {
            let mgr = Arc::clone(&mgr);
            let concurrent = Arc::clone(&concurrent);
            handles.push(thread::spawn(move || {
                let _g = mgr.acquire(5, mode);
                concurrent.fetch_add(1, Ordering::SeqCst);
            }));
        }
        thread::sleep(Duration::from_millis(30));
        assert_eq!(concurrent.load(Ordering::SeqCst), 0, "held exclusively");
        drop(guard);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(concurrent.load(Ordering::SeqCst), 2);
        assert!(mgr.contended() >= 1);
    }

    #[test]
    fn queued_writer_blocks_new_readers() {
        let mgr = Arc::new(LockManager::new());
        let reader = mgr.acquire(7, LockMode::Shared);
        // Writer queues behind the reader.
        let writer = {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || {
                let _g = mgr.acquire(7, LockMode::Exclusive);
            })
        };
        thread::sleep(Duration::from_millis(20));
        // A new reader must now wait too (writer priority), so the write
        // eventually completes even under a stream of readers.
        let late_reader = {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || {
                let _g = mgr.acquire(7, LockMode::Shared);
            })
        };
        thread::sleep(Duration::from_millis(20));
        drop(reader);
        writer.join().unwrap();
        late_reader.join().unwrap();
    }

    #[test]
    fn mutual_exclusion_under_hammering() {
        let mgr = Arc::new(LockManager::new());
        let in_section = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let mgr = Arc::clone(&mgr);
            let in_section = Arc::clone(&in_section);
            handles.push(thread::spawn(move || {
                for i in 0..500u64 {
                    let _g = mgr.acquire_key(i % 128, LockMode::Exclusive);
                    let now = in_section.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(now, 0, "exclusive section violated");
                    in_section.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mgr.acquired(), 8 * 500);
    }

    #[test]
    fn readers_and_writers_interleave_correctly() {
        let mgr = Arc::new(LockManager::new());
        let value = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for t in 0..4 {
            let mgr = Arc::clone(&mgr);
            let value = Arc::clone(&value);
            handles.push(thread::spawn(move || {
                for i in 0..300u32 {
                    if (t + i) % 3 == 0 {
                        let _g = mgr.acquire(0, LockMode::Exclusive);
                        let v = value.load(Ordering::SeqCst);
                        value.store(v + 1, Ordering::SeqCst);
                    } else {
                        let _g = mgr.acquire(0, LockMode::Shared);
                        let _ = value.load(Ordering::SeqCst);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every increment happened under exclusion: the counter equals the
        // exact number of writer sections.
        let writes: u32 = (0..4)
            .map(|t| (0..300u32).filter(|i| (t + i) % 3 == 0).count() as u32)
            .sum();
        assert_eq!(value.load(Ordering::SeqCst), writes);
    }
}
