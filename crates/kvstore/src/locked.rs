//! The lock-based multithreaded baseline (`BDB`, §VI-B).
//!
//! "Differently from P-SMR, sP-SMR and no-rep, BDB uses locks to
//! synchronize the concurrent execution of commands. As a result, there is
//! no scheduler interposed between clients and server threads: each server
//! thread receives requests through a separate socket, executes them, and
//! responds to clients."
//!
//! Here each server thread owns a channel (the "socket"); clients are
//! assigned to server threads round-robin at connection time. All threads
//! execute directly against one shared lock-coupling B+-tree
//! ([`psmr_btree::ConcurrentBPlusTree`]) — synchronization happens inside
//! the tree via per-node latches, as in Berkeley DB's in-memory B-tree.

use crate::lock_manager::{LockManager, LockMode};
use crate::ops::{key_of_payload, KvResult, DELETE, INSERT, READ, UPDATE};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::RwLock;
use psmr_btree::ConcurrentBPlusTree;
use psmr_common::envelope::{Request, Response};
use psmr_common::ids::ClientId;
use psmr_core::client::{ClientProxy, RequestSink};
use psmr_core::engines::Engine;
use psmr_core::service::{ResponseRouter, SharedRouter};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running lock-based key-value server.
///
/// # Example
///
/// ```
/// use psmr_core::engines::Engine;
/// use psmr_kvstore::{KvOp, KvResult, LockedKvEngine};
///
/// let engine = LockedKvEngine::spawn(4, 1000);
/// let mut client = engine.client();
/// let resp = client.execute(
///     psmr_kvstore::READ,
///     KvOp::Read { key: 7 }.encode(),
/// );
/// assert_eq!(KvResult::decode(&resp), KvResult::Value(7));
/// engine.shutdown();
/// ```
pub struct LockedKvEngine {
    router: SharedRouter,
    sockets: Vec<Arc<SocketSink>>,
    threads: Vec<JoinHandle<()>>,
    next_client: AtomicU64,
}

/// One server thread's "socket".
struct SocketSink {
    tx: RwLock<Option<Sender<Request>>>,
}

impl RequestSink for SocketSink {
    fn submit(&self, request: &Request) {
        if let Some(tx) = self.tx.read().as_ref() {
            let _ = tx.send(request.clone());
        }
    }
}

impl LockedKvEngine {
    /// Spawns `n_threads` server threads over a tree pre-loaded with keys
    /// `0..initial_keys` (value = key).
    ///
    /// # Panics
    ///
    /// Panics if `n_threads` is zero.
    pub fn spawn(n_threads: usize, initial_keys: u64) -> Self {
        Self::spawn_with_work(n_threads, initial_keys, std::time::Duration::ZERO)
    }

    /// Like [`LockedKvEngine::spawn`] with the calibrated per-command
    /// execution cost used by the evaluation harness (see
    /// [`crate::KvService::with_keys_and_work`]).
    ///
    /// # Panics
    ///
    /// Panics if `n_threads` is zero.
    pub fn spawn_with_work(n_threads: usize, initial_keys: u64, work: std::time::Duration) -> Self {
        Self::spawn_full(n_threads, initial_keys, work, false)
    }

    /// Full-fidelity spawn: with `lock_manager` set, every command
    /// additionally acquires a page lock from a centralized
    /// [`LockManager`] (shared for reads, exclusive for writes) before
    /// touching the tree — Berkeley DB's lock-table architecture, whose
    /// central-table serialization is the contention source the paper's
    /// BDB numbers reflect.
    ///
    /// # Panics
    ///
    /// Panics if `n_threads` is zero.
    pub fn spawn_full(
        n_threads: usize,
        initial_keys: u64,
        work: std::time::Duration,
        lock_manager: bool,
    ) -> Self {
        assert!(n_threads > 0, "need at least one server thread");
        let manager = lock_manager.then(|| Arc::new(LockManager::new()));
        let tree: ConcurrentBPlusTree<u64> = ConcurrentBPlusTree::new();
        for k in 0..initial_keys {
            tree.insert(k, k);
        }
        let router: SharedRouter = Arc::new(ResponseRouter::new());
        let mut sockets = Vec::with_capacity(n_threads);
        let mut threads = Vec::with_capacity(n_threads);
        for i in 0..n_threads {
            let (tx, rx): (Sender<Request>, Receiver<Request>) = bounded(16 * 1024);
            sockets.push(Arc::new(SocketSink {
                tx: RwLock::new(Some(tx)),
            }));
            let tree = tree.clone();
            let router = Arc::clone(&router);
            let manager = manager.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("bdb-w{i}"))
                    .spawn(move || server_main(rx, tree, router, work, manager))
                    .expect("spawn locked-kv server thread"),
            );
        }
        Self {
            router,
            sockets,
            threads,
            next_client: AtomicU64::new(0),
        }
    }
}

impl Engine for LockedKvEngine {
    fn client(&self) -> ClientProxy {
        let n = self.next_client.fetch_add(1, Ordering::Relaxed);
        let socket = Arc::clone(&self.sockets[(n as usize) % self.sockets.len()]);
        ClientProxy::new(ClientId::new(n), socket as _, Arc::clone(&self.router))
    }

    fn label(&self) -> &'static str {
        "BDB"
    }

    fn shutdown(mut self) {
        for socket in &self.sockets {
            socket.tx.write().take();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn server_main(
    rx: Receiver<Request>,
    tree: ConcurrentBPlusTree<u64>,
    router: SharedRouter,
    work: std::time::Duration,
    manager: Option<Arc<LockManager>>,
) {
    while let Ok(req) = rx.recv() {
        crate::service::spin_for(work);
        let key = key_of_payload(&req.payload);
        // In lock-manager mode, hold the page lock across the access as
        // BDB does (transactions disabled = lock per operation).
        let _page_lock = manager.as_ref().map(|m| {
            let mode = if req.command == READ {
                LockMode::Shared
            } else {
                LockMode::Exclusive
            };
            m.acquire_key(key, mode)
        });
        let result = match req.command {
            READ => match tree.get(&key) {
                Some(v) => KvResult::Value(v),
                None => KvResult::Err,
            },
            UPDATE => {
                let value = u64::from_le_bytes(
                    req.payload[8..16]
                        .try_into()
                        .expect("update carries a value"),
                );
                if tree.update(key, value) {
                    KvResult::Ok
                } else {
                    KvResult::Err
                }
            }
            INSERT => {
                let value = u64::from_le_bytes(
                    req.payload[8..16]
                        .try_into()
                        .expect("insert carries a value"),
                );
                if tree.insert(key, value) {
                    KvResult::Ok
                } else {
                    KvResult::Err
                }
            }
            DELETE => match tree.remove(&key) {
                Some(_) => KvResult::Ok,
                None => KvResult::Err,
            },
            other => panic!("unknown kv command {other}"),
        };
        router.respond(req.client, Response::new(req.request, result.encode()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::KvOp;

    #[test]
    fn serves_multiple_clients_round_robin() {
        let engine = LockedKvEngine::spawn(3, 100);
        let mut clients: Vec<ClientProxy> = (0..6).map(|_| engine.client()).collect();
        for (i, client) in clients.iter_mut().enumerate() {
            let key = i as u64 * 10;
            let resp = client.execute(READ, KvOp::Read { key }.encode());
            assert_eq!(KvResult::decode(&resp), KvResult::Value(key));
        }
        drop(clients);
        engine.shutdown();
    }

    #[test]
    fn writes_are_visible_across_server_threads() {
        let engine = LockedKvEngine::spawn(4, 10);
        let mut a = engine.client(); // socket 0
        let mut b = engine.client(); // socket 1
        let resp = a.execute(UPDATE, KvOp::Update { key: 5, value: 999 }.encode());
        assert_eq!(KvResult::decode(&resp), KvResult::Ok);
        let resp = b.execute(READ, KvOp::Read { key: 5 }.encode());
        assert_eq!(KvResult::decode(&resp), KvResult::Value(999));
        drop((a, b));
        engine.shutdown();
    }

    #[test]
    fn concurrent_clients_hammering_inserts_and_deletes() {
        let engine = Arc::new(LockedKvEngine::spawn(4, 0));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                let mut client = engine.client();
                for i in 0..200u64 {
                    let key = t * 1_000 + i;
                    let resp = client.execute(INSERT, KvOp::Insert { key, value: i }.encode());
                    assert_eq!(KvResult::decode(&resp), KvResult::Ok);
                }
                for i in 0..200u64 {
                    let key = t * 1_000 + i;
                    let resp = client.execute(DELETE, KvOp::Delete { key }.encode());
                    assert_eq!(KvResult::decode(&resp), KvResult::Ok);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        match Arc::try_unwrap(engine) {
            Ok(engine) => engine.shutdown(),
            Err(_) => panic!("clients still hold the engine"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one server thread")]
    fn zero_threads_rejected() {
        let _ = LockedKvEngine::spawn(0, 0);
    }

    #[test]
    fn lock_manager_mode_serves_correctly_under_concurrency() {
        let engine = Arc::new(LockedKvEngine::spawn_full(
            4,
            1_000,
            std::time::Duration::ZERO,
            true,
        ));
        let mut handles = Vec::new();
        for t in 0..6u64 {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                let mut client = engine.client();
                for i in 0..300u64 {
                    let key = (t * 47 + i) % 1_000;
                    if i % 3 == 0 {
                        let resp = client.execute(UPDATE, KvOp::Update { key, value: i }.encode());
                        assert_eq!(KvResult::decode(&resp), KvResult::Ok);
                    } else {
                        let resp = client.execute(READ, KvOp::Read { key }.encode());
                        assert!(matches!(KvResult::decode(&resp), KvResult::Value(_)));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        match Arc::try_unwrap(engine) {
            Ok(engine) => engine.shutdown(),
            Err(_) => panic!("clients still hold the engine"),
        }
    }
}
